"""Structured sweep results with CSV/JSON export.

Every grid cell evaluates to one :class:`SweepResult` row; the
:class:`SweepResultSet` collects them in grid order and knows how to flatten
itself for spreadsheets (:meth:`SweepResultSet.to_csv`) and how to round-trip
losslessly through JSON (:meth:`SweepResultSet.to_json` /
:meth:`SweepResultSet.from_json`) as long as the axis values are plain JSON
scalars.  Non-scalar axis values (e.g. distribution objects) are exported as
their ``repr`` — readable, but not reconstructible.
"""

from __future__ import annotations

import csv
import json
import math
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ParameterError, SolverError

#: Metric columns are emitted in this order (then alphabetically for extras).
_PREFERRED_METRICS = ("mean_queue_length", "mean_response_time", "decay_rate", "utilisation")


@dataclass(frozen=True)
class SweepResult:
    """The evaluated outcome of one grid cell.

    Attributes
    ----------
    index:
        Position in row-major grid order.
    parameters:
        The axis values of this cell.
    solver:
        Name of the solver that produced the metrics, or ``None`` when the
        model was unstable or every solver in the policy failed.
    stable:
        Whether the model satisfied the stability condition.  Unstable cells
        carry infinite queue-length/response-time metrics rather than an
        error, mirroring how the cost optimiser treats them.
    metrics:
        Mapping of metric name to value (``mean_queue_length``,
        ``mean_response_time``, plus solver-specific extras such as
        ``decay_rate`` or ``utilisation``).
    error:
        Concatenated failure messages when no solver succeeded.
    """

    index: int
    parameters: Mapping[str, object]
    solver: str | None
    stable: bool
    metrics: Mapping[str, float]
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the cell produced usable metrics."""
        return self.error is None

    def metric(self, name: str) -> float:
        """A single metric value (``inf`` for unstable cells).

        A cell whose solvers all failed carries no metrics; asking it for one
        re-raises the captured failure as a :class:`SolverError` so callers
        (e.g. the figure drivers) surface the diagnostic instead of a bare
        ``KeyError``.
        """
        try:
            return float(self.metrics[name])
        except KeyError:
            if self.error is not None:
                raise SolverError(
                    f"sweep point {dict(self.parameters)} produced no {name!r}: "
                    f"{self.error}"
                ) from None
            raise


def _json_scalar(value: object) -> object:
    """A JSON-representable stand-in for an axis value or metric."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    return repr(value)


def _from_json_scalar(value: object) -> object:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if value == "nan":
        return math.nan
    return value


class SweepResultSet:
    """The ordered rows of one sweep, with export helpers."""

    def __init__(
        self,
        results: Sequence[SweepResult],
        *,
        axis_names: Sequence[str],
        name: str = "sweep",
    ) -> None:
        self._results = tuple(sorted(results, key=lambda row: row.index))
        self._axis_names = tuple(axis_names)
        self._name = str(name)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """The sweep label."""
        return self._name

    @property
    def axis_names(self) -> tuple[str, ...]:
        """The axis names, in grid order."""
        return self._axis_names

    @property
    def results(self) -> tuple[SweepResult, ...]:
        """The rows in grid order."""
        return self._results

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[SweepResult]:
        return iter(self._results)

    def __getitem__(self, index: int) -> SweepResult:
        return self._results[index]

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    def metric_column(self, name: str) -> list[float]:
        """One metric across all rows, in grid order."""
        return [row.metric(name) for row in self._results]

    def find(self, **parameters: object) -> SweepResult:
        """The unique row whose parameters include every given item."""
        matches = [
            row
            for row in self._results
            if all(row.parameters.get(key) == value for key, value in parameters.items())
        ]
        if len(matches) != 1:
            raise ParameterError(
                f"expected exactly one row matching {parameters}, found {len(matches)}"
            )
        return matches[0]

    def select(self, **parameters: object) -> list[SweepResult]:
        """All rows whose parameters include every given item, in grid order."""
        return [
            row
            for row in self._results
            if all(row.parameters.get(key) == value for key, value in parameters.items())
        ]

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def metric_names(self) -> tuple[str, ...]:
        """The union of metric keys across rows, preferred columns first."""
        seen: set[str] = set()
        for row in self._results:
            seen.update(row.metrics)
        ordered = [name for name in _PREFERRED_METRICS if name in seen]
        ordered.extend(sorted(seen - set(_PREFERRED_METRICS)))
        return tuple(ordered)

    def rows(self) -> list[dict[str, object]]:
        """Flat dictionaries (one per grid cell), ready for CSV writers."""
        metric_names = self.metric_names()
        flat: list[dict[str, object]] = []
        for row in self._results:
            record: dict[str, object] = {"index": row.index}
            for axis in self._axis_names:
                record[axis] = _json_scalar(row.parameters.get(axis))
            record["solver"] = row.solver
            record["stable"] = row.stable
            for name in metric_names:
                value = row.metrics.get(name)
                record[name] = _json_scalar(value) if value is not None else None
            record["error"] = row.error
            flat.append(record)
        return flat

    def to_csv(self, path: str | Path) -> Path:
        """Write the flattened rows to a CSV file and return its path."""
        path = Path(path)
        records = self.rows()
        fieldnames = (
            ["index", *self._axis_names, "solver", "stable", *self.metric_names(), "error"]
            if records
            else ["index"]
        )
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(records)
        return path

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise the result set to JSON; optionally write it to ``path``."""
        payload = {
            "name": self._name,
            "axis_names": list(self._axis_names),
            "results": [
                {
                    "index": row.index,
                    "parameters": {
                        key: _json_scalar(value) for key, value in row.parameters.items()
                    },
                    "solver": row.solver,
                    "stable": row.stable,
                    "metrics": {
                        key: _json_scalar(value) for key, value in row.metrics.items()
                    },
                    "error": row.error,
                }
                for row in self._results
            ],
        }
        text = json.dumps(payload, indent=2)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "SweepResultSet":
        """Rebuild a result set from :meth:`to_json` output (text or path)."""
        if isinstance(source, Path):
            text = source.read_text()
        else:
            text = str(source)
            if "\n" not in text and text.strip() and not text.lstrip().startswith("{"):
                text = Path(text).read_text()
        payload = json.loads(text)
        results = [
            SweepResult(
                index=int(entry["index"]),
                parameters={
                    key: _from_json_scalar(value)
                    for key, value in entry["parameters"].items()
                },
                solver=entry["solver"],
                stable=bool(entry["stable"]),
                metrics={
                    key: float(_from_json_scalar(value))
                    for key, value in entry["metrics"].items()
                },
                error=entry["error"],
            )
            for entry in payload["results"]
        ]
        return cls(results, axis_names=payload["axis_names"], name=payload["name"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepResultSet(name={self._name!r}, rows={len(self._results)})"
