"""Evaluation engine for parameter sweeps.

The :class:`SweepRunner` turns a :class:`~repro.sweeps.spec.SweepSpec` into a
:class:`~repro.sweeps.results.SweepResultSet`.  All evaluation semantics —
the spectral → geometric → ctmc → simulate solver fallback, memoisation and
process-parallel fan-out — live in :mod:`repro.solvers`; the runner's job is
purely to expand the grid, push the batch through
:func:`repro.solvers.solve_many` with its :class:`~repro.solvers.SolutionCache`,
and shape the outcomes into result rows:

* **solver fallback** — each point is evaluated with the first solver of its
  policy that succeeds (see :func:`repro.solvers.evaluate`);
* **process parallelism** — grid points are independent, so with
  ``parallel=True`` they are fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; the serial path is
  byte-for-byte deterministic with the parallel one because every evaluation
  is a pure function of ``(model, policy)``;
* **caching** — outcomes are memoised in a :class:`~repro.solvers.SolutionCache`
  keyed by the full model parameterisation and the policy.  Repeated grid
  points are solved exactly once per batch — the cache deduplicates pending
  work *before* parallel fan-out, so duplicates never reach the worker pool —
  and a runner (or cache) shared across sweeps solves each distinct
  configuration once globally.

Unstable models are not errors: they produce rows with ``stable=False`` and
infinite queue-length/response-time metrics, which is what cost curves over a
server-count axis expect.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from ..queueing.model import UnreliableQueueModel
from ..solvers import (
    SolutionCache,
    SolveOutcome,
    SolverPolicy,
    default_max_workers,
    evaluate,
    solution_cache_key,
    solve_many,
)
from .results import SweepResult, SweepResultSet
from .spec import SweepSpec

#: Outcome record cached per (model parameters, policy) key; kept as an alias
#: for backwards compatibility (it unpacks as (solver, stable, metrics, error)).
_Outcome = SolveOutcome


def cache_key(model: UnreliableQueueModel, policy: SolverPolicy) -> tuple:
    """The memoisation key of one evaluation: full model parameters + policy."""
    return solution_cache_key(model, policy)


def evaluate_point(model: UnreliableQueueModel, policy: SolverPolicy) -> SolveOutcome:
    """Evaluate one model under a policy; pure function of its arguments.

    Thin alias of :func:`repro.solvers.evaluate`, kept because the sweep
    engine exposed it first.
    """
    return evaluate(model, policy)


class SweepRunner:
    """Evaluates sweep specs, optionally in parallel, with result caching.

    Parameters
    ----------
    parallel:
        Evaluate grid points across worker processes.  The results are
        identical to the serial path; only wall-clock time changes.
    max_workers:
        Worker-process count (defaults to the usable CPU count).
    cache:
        ``True`` (default) memoises outcomes in a runner-private
        :class:`~repro.solvers.SolutionCache`; ``False`` disables
        memoisation; an explicit :class:`~repro.solvers.SolutionCache`
        instance is used as-is, so several runners (or other call sites using
        :func:`repro.solvers.solve`) can share one cache.
    """

    def __init__(
        self,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        cache: bool | SolutionCache = True,
    ) -> None:
        self._parallel = bool(parallel)
        self._max_workers = max_workers if max_workers is not None else default_max_workers()
        if self._max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        if isinstance(cache, SolutionCache):
            self._cache = cache
        else:
            self._cache = SolutionCache(enabled=bool(cache))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def parallel(self) -> bool:
        """Whether grid points are evaluated across worker processes."""
        return self._parallel

    @property
    def max_workers(self) -> int:
        """The worker-process count used when parallel."""
        return self._max_workers

    @property
    def cache(self) -> SolutionCache:
        """The solution cache backing this runner (possibly disabled)."""
        return self._cache

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and the current number of cached outcomes."""
        stats = self._cache.stats()
        return {"hits": stats["hits"], "misses": stats["misses"], "size": stats["size"]}

    def clear_cache(self) -> None:
        """Drop all memoised outcomes (counters are reset too)."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def run(self, spec: SweepSpec) -> SweepResultSet:
        """Evaluate every grid point of ``spec`` and return the result set."""
        points = list(spec.expand())
        outcomes = solve_many(
            (point.model for point in points),
            [point.policy for point in points],
            parallel=self._parallel,
            max_workers=self._max_workers,
            cache=self._cache,
        )
        results = [
            SweepResult(
                index=point.index,
                parameters=dict(point.parameters),
                solver=outcome.solver,
                stable=outcome.stable,
                metrics=dict(outcome.metrics),
                error=outcome.error,
            )
            for point, outcome in zip(points, outcomes)
        ]
        return SweepResultSet(results, axis_names=spec.axis_names, name=spec.name)


def run_sweep(
    spec: SweepSpec,
    *,
    parallel: bool = False,
    max_workers: int | None = None,
) -> SweepResultSet:
    """One-shot convenience wrapper: build a runner, run one spec."""
    return SweepRunner(parallel=parallel, max_workers=max_workers).run(spec)
