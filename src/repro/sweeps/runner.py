"""Evaluation engine for parameter sweeps.

The :class:`SweepRunner` turns a :class:`~repro.sweeps.spec.SweepSpec` into a
:class:`~repro.sweeps.results.SweepResultSet`:

* **solver fallback** — each point is evaluated with the first solver of its
  policy that succeeds; :class:`~repro.exceptions.SolverError` (numerical
  failure), :class:`~repro.exceptions.ParameterError` (e.g. non-Markovian
  period distributions handed to an analytical solver) and simulation errors
  fall through to the next solver in the policy order;
* **process parallelism** — grid points are independent, so with
  ``parallel=True`` they are fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (workers default to the CPU
  count); the serial path evaluates in-process and is byte-for-byte
  deterministic with the parallel one because every evaluation is a pure
  function of ``(model, policy)``;
* **caching** — outcomes are memoised per runner, keyed by the full model
  parameterisation and the policy, so repeated grid points (across sweeps run
  through the same runner, e.g. the experiment suite) are solved once.

Unstable models are not errors: they produce rows with ``stable=False`` and
infinite queue-length/response-time metrics, which is what cost curves over a
server-count axis expect.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Mapping

from ..exceptions import ParameterError, SimulationError, SolverError
from ..queueing.model import UnreliableQueueModel
from .results import SweepResult, SweepResultSet
from .spec import SolverPolicy, SweepSpec

#: Outcome tuple cached per (model parameters, policy) key:
#: (solver, stable, metrics, error).
_Outcome = tuple  # noqa: UP040 - documented alias, not a type statement

_INFINITE_METRICS: Mapping[str, float] = {
    "mean_queue_length": float("inf"),
    "mean_response_time": float("inf"),
}


def _distribution_key(distribution: object) -> object:
    """A hashable stand-in for a period distribution."""
    try:
        hash(distribution)
    except TypeError:
        return repr(distribution)
    return distribution


def cache_key(model: UnreliableQueueModel, policy: SolverPolicy) -> tuple:
    """The memoisation key of one evaluation: full model parameters + policy."""
    return (
        model.num_servers,
        model.arrival_rate,
        model.service_rate,
        _distribution_key(model.operative),
        _distribution_key(model.inoperative),
        policy,
    )


def _solve_one(model: UnreliableQueueModel, solver: str, policy: SolverPolicy) -> dict[str, float]:
    """Run one named solver and normalise its output into a metrics dict."""
    if solver == "spectral":
        solution = model.solve_spectral()
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
            "decay_rate": solution.decay_rate,
        }
    if solver == "geometric":
        solution = model.solve_geometric()
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
            "decay_rate": solution.decay_rate,
        }
    if solver == "ctmc":
        solution = model.solve_ctmc()
        return {
            "mean_queue_length": solution.mean_queue_length,
            "mean_response_time": solution.mean_response_time,
        }
    if solver == "simulate":
        estimate = model.simulate(
            horizon=policy.simulate_horizon,
            warmup_fraction=policy.simulate_warmup_fraction,
            num_batches=policy.simulate_num_batches,
            seed=policy.simulate_seed,
        )
        return {
            "mean_queue_length": estimate.mean_queue_length.estimate,
            "mean_response_time": estimate.mean_response_time.estimate,
            "utilisation": estimate.utilisation,
        }
    raise ParameterError(f"unknown solver {solver!r}")


def evaluate_point(model: UnreliableQueueModel, policy: SolverPolicy) -> _Outcome:
    """Evaluate one model under a policy; pure function of its arguments."""
    if not model.is_stable:
        return (None, False, dict(_INFINITE_METRICS), None)
    failures: list[str] = []
    for solver in policy.order:
        try:
            metrics = _solve_one(model, solver, policy)
        except (SolverError, ParameterError, SimulationError, NotImplementedError) as exc:
            failures.append(f"{solver}: {exc}")
            continue
        return (solver, True, metrics, None)
    return (None, True, {}, "; ".join(failures) or "no solver succeeded")


def _evaluate_task(task: tuple[int, UnreliableQueueModel, SolverPolicy]):
    """Worker entry point: evaluate one point and tag it with its index."""
    index, model, policy = task
    return index, evaluate_point(model, policy)


def _pool_probe() -> bool:
    """Trivial task used to check that worker processes can start at all."""
    return True


def default_max_workers() -> int:
    """The default worker count: the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class SweepRunner:
    """Evaluates sweep specs, optionally in parallel, with result caching.

    Parameters
    ----------
    parallel:
        Evaluate grid points across worker processes.  The results are
        identical to the serial path; only wall-clock time changes.
    max_workers:
        Worker-process count (defaults to the usable CPU count).
    cache:
        Memoise outcomes keyed by model parameters and policy.  A runner
        shared across sweeps solves each distinct configuration once.
    """

    def __init__(
        self,
        *,
        parallel: bool = False,
        max_workers: int | None = None,
        cache: bool = True,
    ) -> None:
        self._parallel = bool(parallel)
        self._max_workers = max_workers if max_workers is not None else default_max_workers()
        if self._max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        self._cache_enabled = bool(cache)
        self._cache: dict[tuple, _Outcome] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def parallel(self) -> bool:
        """Whether grid points are evaluated across worker processes."""
        return self._parallel

    @property
    def max_workers(self) -> int:
        """The worker-process count used when parallel."""
        return self._max_workers

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and the current number of cached outcomes."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._cache),
        }

    def clear_cache(self) -> None:
        """Drop all memoised outcomes (counters are reset too)."""
        self._cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def run(self, spec: SweepSpec) -> SweepResultSet:
        """Evaluate every grid point of ``spec`` and return the result set."""
        points = list(spec.expand())
        outcomes: dict[int, _Outcome] = {}
        pending: list[tuple[int, UnreliableQueueModel, SolverPolicy]] = []
        keys: dict[int, tuple] = {}

        for point in points:
            key = cache_key(point.model, point.policy)
            keys[point.index] = key
            if self._cache_enabled and key in self._cache:
                self._cache_hits += 1
                outcomes[point.index] = self._cache[key]
            else:
                self._cache_misses += 1
                pending.append((point.index, point.model, point.policy))

        if pending:
            if self._parallel and len(pending) > 1 and self._max_workers > 1:
                evaluated = self._run_parallel(pending)
            else:
                evaluated = (_evaluate_task(task) for task in pending)
            for index, outcome in evaluated:
                outcomes[index] = outcome
                if self._cache_enabled:
                    self._cache[keys[index]] = outcome

        results = [
            SweepResult(
                index=point.index,
                parameters=dict(point.parameters),
                solver=outcomes[point.index][0],
                stable=outcomes[point.index][1],
                metrics=dict(outcomes[point.index][2]),
                error=outcomes[point.index][3],
            )
            for point in points
        ]
        return SweepResultSet(results, axis_names=spec.axis_names, name=spec.name)

    def _run_parallel(self, pending):
        workers = min(self._max_workers, len(pending))
        chunksize = max(1, len(pending) // (4 * workers))
        # Probe the pool with a trivial task first: environments where worker
        # processes cannot start at all (no /dev/shm, forbidden fork) fail
        # here and degrade to the serial path.  The probe deliberately does
        # NOT guard the real map below — a worker crashing on an actual grid
        # point (e.g. OOM on a pathological configuration) is a genuine error
        # that must propagate, not be silently replayed serially in-process.
        executor = None
        try:
            executor = ProcessPoolExecutor(max_workers=workers)
            executor.submit(_pool_probe).result()
        except (OSError, RuntimeError):  # pragma: no cover - sandboxed envs
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            warnings.warn(
                "worker processes are unavailable; evaluating the sweep serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return [_evaluate_task(task) for task in pending]
        with executor:
            return list(executor.map(_evaluate_task, pending, chunksize=chunksize))


def run_sweep(
    spec: SweepSpec,
    *,
    parallel: bool = False,
    max_workers: int | None = None,
) -> SweepResultSet:
    """One-shot convenience wrapper: build a runner, run one spec."""
    return SweepRunner(parallel=parallel, max_workers=max_workers).run(spec)
