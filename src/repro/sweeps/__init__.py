"""Declarative, parallel parameter sweeps over the queueing model.

The paper's Section-4 results are all parameter sweeps — queue length against
the number of servers, against the mean repair time, against the operative
squared coefficient of variation, cost against ``N``.  This package provides
the one engine behind all of them (and behind user-defined grids via the
``repro sweep`` CLI subcommand):

* :class:`SweepSpec` — a grid over model parameters plus a solver policy;
* :class:`SolverPolicy` — which solver to try first (``spectral`` by
  default) and the fallback order on failure (``geometric``, ``ctmc``,
  ``simulate``); this is :class:`repro.solvers.SolverPolicy`, re-exported —
  dispatch, fallback and caching all live in :mod:`repro.solvers`;
* :class:`SweepRunner` — evaluates the grid serially or across worker
  processes through :func:`repro.solvers.solve_many`, memoising each
  distinct configuration in a :class:`~repro.solvers.SolutionCache`;
* :class:`SweepResultSet` / :class:`SweepResult` — structured rows with
  CSV/JSON export.

Example
-------

>>> from repro.queueing import sun_fitted_model
>>> from repro.sweeps import SweepRunner, SweepSpec
>>> spec = SweepSpec(
...     base_model=sun_fitted_model(num_servers=10, arrival_rate=7.0),
...     axes=[("num_servers", (9, 10, 11, 12))],
... )
>>> results = SweepRunner(parallel=True).run(spec)  # doctest: +SKIP
>>> results.metric_column("mean_queue_length")  # doctest: +SKIP
[...]
"""

from .results import SweepResult, SweepResultSet
from .runner import SweepRunner, cache_key, default_max_workers, evaluate_point, run_sweep
from .spec import (
    KNOWN_SOLVERS,
    MODEL_FIELDS,
    SOLVER_AXIS,
    TIME_AXIS,
    SolverPolicy,
    SweepAxis,
    SweepPoint,
    SweepSpec,
    TimeGridAxis,
)

__all__ = [
    "KNOWN_SOLVERS",
    "MODEL_FIELDS",
    "SOLVER_AXIS",
    "TIME_AXIS",
    "SolverPolicy",
    "SweepAxis",
    "SweepPoint",
    "SweepSpec",
    "TimeGridAxis",
    "SweepRunner",
    "SweepResult",
    "SweepResultSet",
    "cache_key",
    "default_max_workers",
    "evaluate_point",
    "run_sweep",
]
