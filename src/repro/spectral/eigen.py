"""Generalized eigenvalues and left eigenvectors of the characteristic polynomial.

The spectral-expansion method needs the "generalized eigenvalues" ``z_k`` of
the quadratic matrix polynomial ``Q(z) = Q0 + Q1 z + Q2 z^2`` that lie in the
interior of the unit disk, together with the corresponding left eigenvectors
``u_k`` satisfying ``u_k Q(z_k) = 0`` (paper Eq. 17–18).  When the queue is
ergodic, exactly ``s`` eigenvalues lie strictly inside the unit disk (one per
environment state) and experience shows they are simple.

The quadratic eigenvalue problem is solved by the standard companion
linearisation of the transposed polynomial: ``u Q(z) = 0`` is equivalent to
``(Q0^T + z Q1^T + z^2 Q2^T) w = 0`` with ``w = u^T``, which becomes the
generalized (pencil) eigenproblem

.. math::

    \\begin{pmatrix} 0 & I \\\\ -Q_0^T & -Q_1^T \\end{pmatrix}
    \\begin{pmatrix} w \\\\ z w \\end{pmatrix}
    = z
    \\begin{pmatrix} I & 0 \\\\ 0 & Q_2^T \\end{pmatrix}
    \\begin{pmatrix} w \\\\ z w \\end{pmatrix} .

``Q2`` is singular whenever some mode has no operative server, so the pencil
has infinite eigenvalues; SciPy's QZ-based solver handles this and the
filtering step simply discards them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from ..exceptions import SolverError

#: Eigenvalues with modulus below this threshold times machine epsilon of the
#: problem scale are treated as exact zeros (they are legitimate eigenvalues).
_UNIT_DISK_TOLERANCE = 1e-9

#: Inverse-iteration sweeps tried before falling back to the (much more
#: expensive) full SVD in :func:`_left_null_vector`.
_MAX_INVERSE_ITERATIONS = 4

#: Relative residual under which an inverse-iteration null vector is accepted.
_INVERSE_ITERATION_TOL = 1e-12


@dataclass(frozen=True)
class SpectralEigensystem:
    """The inside-the-unit-disk eigenstructure of ``Q(z)``.

    Attributes
    ----------
    eigenvalues:
        Complex array of the ``d`` eigenvalues with ``|z| < 1``, sorted by
        increasing modulus (the dominant eigenvalue is last).
    left_eigenvectors:
        Complex array of shape ``(d, s)``; row ``k`` is the left eigenvector
        ``u_k`` with ``u_k Q(z_k) = 0``, normalised to unit Euclidean norm
        with a deterministic phase.
    residuals:
        Array of the residual norms ``||u_k Q(z_k)||_inf`` for diagnostics.
    """

    eigenvalues: np.ndarray
    left_eigenvectors: np.ndarray
    residuals: np.ndarray

    @property
    def count(self) -> int:
        """The number of eigenvalues inside the unit disk."""
        return int(self.eigenvalues.size)

    @property
    def dominant_eigenvalue(self) -> float:
        """The eigenvalue of largest modulus inside the unit disk.

        The theory (and paper Section 3.2) guarantees it is real and
        positive; the property returns it as a float and raises if the
        numerically computed value has a non-negligible imaginary part.
        """
        value = self.eigenvalues[-1]
        if abs(value.imag) > 1e-8 * max(1.0, abs(value.real)):
            raise SolverError(
                f"dominant eigenvalue {value!r} is not numerically real; "
                "the eigensystem is suspect"
            )
        return float(value.real)

    @property
    def dominant_left_eigenvector(self) -> np.ndarray:
        """The left eigenvector associated with the dominant eigenvalue (real part)."""
        vector = self.left_eigenvectors[-1]
        return np.real(vector)

    def max_residual(self) -> float:
        """The largest eigenpair residual, a cheap quality indicator."""
        return float(np.max(self.residuals)) if self.residuals.size else 0.0


def _normalise_left_eigenvector(vector: np.ndarray) -> np.ndarray:
    """Scale a left eigenvector to unit Euclidean norm with a consistent phase.

    Unit 2-norm (rather than unit element sum) keeps the boundary linear
    system well scaled: eigenvectors whose entries nearly cancel would
    otherwise be blown up by orders of magnitude.  The phase is fixed so the
    entry of largest modulus is real and positive, which makes eigenvectors
    of conjugate eigenvalue pairs conjugate to each other.
    """
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        raise SolverError("encountered a zero eigenvector in the spectral expansion")
    scaled = vector / norm
    pivot = scaled[np.argmax(np.abs(scaled))]
    if abs(pivot) > 0.0:
        scaled = scaled * (np.conj(pivot) / abs(pivot))
    return scaled


def _left_null_vector(matrix: np.ndarray) -> np.ndarray:
    """The (complex) left null vector of a numerically singular matrix.

    Used to re-extract accurate eigenvectors once the eigenvalues are known,
    which is far more accurate than reading the eigenvectors off the
    companion linearisation for stiff problems.

    The cheap path is LU-backed inverse iteration on ``matrix^T``: at a
    converged eigenvalue the matrix is numerically singular, so each solve
    amplifies the null direction and one or two sweeps reach the optimal
    residual at a third of an SVD's cost.  The full SVD remains as the
    fallback — it is the most robust extractor when the eigenvalue is not yet
    converged (its right singular vector of smallest singular value spans the
    left null space regardless of conditioning) — and whichever candidate has
    the smaller residual wins.
    """
    transpose = np.asarray(matrix.T, dtype=complex)
    size = transpose.shape[0]
    scale = max(1.0, float(np.max(np.abs(transpose))))
    best: np.ndarray | None = None
    best_residual = np.inf
    # A singular factorisation is the *point* here: LU of a numerically
    # singular matrix yields a tiny pivot (warned about, harmlessly) and the
    # subsequent solves blow up along the null direction.  Exact zero pivots
    # surface as inf/nan and drop through to the SVD.
    with warnings.catch_warnings(), np.errstate(all="ignore"):
        warnings.simplefilter("ignore")
        try:
            factors = scipy.linalg.lu_factor(transpose)
            vector = np.full(size, 1.0 / np.sqrt(size), dtype=complex)
            for _ in range(_MAX_INVERSE_ITERATIONS):
                candidate = scipy.linalg.lu_solve(factors, vector)
                norm = float(np.linalg.norm(candidate))
                if not np.isfinite(norm) or norm == 0.0:
                    break
                vector = candidate / norm
                residual = float(np.max(np.abs(transpose @ vector)))
                if not np.isfinite(residual):
                    break
                if residual < best_residual:
                    best, best_residual = vector, residual
                if residual <= _INVERSE_ITERATION_TOL * scale:
                    return vector
        except (ValueError, scipy.linalg.LinAlgError):
            pass
    _, _, vt = np.linalg.svd(transpose)
    fallback = np.conj(vt[-1])
    if best is not None:
        fallback_residual = float(np.max(np.abs(transpose @ fallback)))
        if best_residual < fallback_residual:
            return best
    return fallback


def refine_eigenpair(
    q0: np.ndarray,
    q1: np.ndarray,
    q2: np.ndarray,
    eigenvalue: complex,
    *,
    max_iterations: int = 20,
    tolerance: float = 1e-12,
) -> tuple[complex, np.ndarray]:
    """Refine an eigenvalue of ``Q(z)`` by Newton's method on ``det Q(z) = 0``.

    The derivative of the determinant is evaluated through Jacobi's formula
    using the adjugate obtained from an SVD-based pseudo-inverse, which stays
    stable near the root.  The associated left eigenvector is re-extracted
    from the SVD at the refined eigenvalue.
    """
    z = complex(eigenvalue)
    scale = max(1.0, float(np.max(np.abs(q0 + q1 + q2))))
    for _ in range(max_iterations):
        matrix = q0 + q1 * z + q2 * (z * z)
        derivative_matrix = q1 + 2.0 * z * q2
        u, s, vt = np.linalg.svd(matrix)
        smallest = s[-1]
        if smallest < tolerance * scale:
            break
        # Newton step on the smallest singular value as a proxy for det:
        # d sigma_min / dz = Re(u_min^H (dQ/dz) v_min) in the complex sense.
        u_min = u[:, -1]
        v_min = np.conj(vt[-1])
        derivative = np.conj(u_min) @ derivative_matrix @ v_min
        if derivative == 0.0 or not np.isfinite(derivative):
            break
        step = smallest / derivative
        candidate = z - step
        if not np.isfinite(candidate):
            break
        z = candidate
    matrix = q0 + q1 * z + q2 * (z * z)
    vector = _left_null_vector(matrix)
    return z, vector


def solve_quadratic_eigenproblem(
    q0: np.ndarray, q1: np.ndarray, q2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``u (Q0 + Q1 z + Q2 z^2) = 0`` for all finite ``(z, u)`` pairs.

    Returns
    -------
    (eigenvalues, left_eigenvectors):
        All finite eigenvalues of the pencil together with the corresponding
        left eigenvectors of ``Q(z)`` (rows).  No unit-disk filtering is done
        here; see :func:`eigenvalues_inside_unit_disk`.
    """
    size = q0.shape[0]
    for name, matrix in (("Q0", q0), ("Q1", q1), ("Q2", q2)):
        if matrix.shape != (size, size):
            raise SolverError(f"{name} must be {size}x{size}, got {matrix.shape}")
    zero = np.zeros((size, size))
    identity = np.eye(size)
    # Companion linearisation of the transposed polynomial.
    lhs = np.block([[zero, identity], [-q0.T, -q1.T]])
    rhs = np.block([[identity, zero], [zero, q2.T]])
    eigenvalues, eigenvectors = scipy.linalg.eig(lhs, rhs)
    finite = np.isfinite(eigenvalues)
    eigenvalues = eigenvalues[finite]
    eigenvectors = eigenvectors[:, finite]
    left_vectors = eigenvectors[:size, :].T  # w = u^T occupies the top block
    return eigenvalues, left_vectors


def eigenvalues_inside_unit_disk(
    q0: np.ndarray,
    q1: np.ndarray,
    q2: np.ndarray,
    expected_count: int | None = None,
) -> SpectralEigensystem:
    """Eigenvalues of ``Q(z)`` strictly inside the unit disk, with eigenvectors.

    Parameters
    ----------
    q0, q1, q2:
        Coefficients of the characteristic matrix polynomial.
    expected_count:
        The number of eigenvalues the theory predicts inside the unit disk
        (the number of environment states ``s`` for an ergodic queue).  When
        provided, the function verifies the count and, if the strict filter
        disagrees because of eigenvalues hugging the unit circle, falls back
        to taking the ``expected_count`` smallest-modulus finite eigenvalues
        (still requiring them to have modulus below ``1``).

    Raises
    ------
    SolverError
        If the eigenvalue count cannot be reconciled with ``expected_count``.
    """
    eigenvalues, left_vectors = solve_quadratic_eigenproblem(q0, q1, q2)
    moduli = np.abs(eigenvalues)
    inside = moduli < 1.0 - _UNIT_DISK_TOLERANCE
    selected = np.where(inside)[0]

    if expected_count is not None and selected.size != expected_count:
        # Eigenvalues extremely close to the unit circle (heavy load) can fall
        # on the wrong side of the strict tolerance; retry by rank.
        order = np.argsort(moduli)
        candidates = [index for index in order if moduli[index] < 1.0 - 1e-14]
        if len(candidates) < expected_count:
            raise SolverError(
                f"found only {len(candidates)} eigenvalues inside the unit disk, "
                f"expected {expected_count}; the queue may be unstable or the "
                "eigenproblem ill-conditioned"
            )
        selected = np.array(candidates[:expected_count])

    chosen_values = eigenvalues[selected]
    order = np.argsort(np.abs(chosen_values), kind="stable")
    chosen_values = chosen_values[order]

    # The eigenvalues from the QZ decomposition are reliable, but the
    # eigenvectors read off the companion linearisation lose accuracy badly
    # when the rates span several orders of magnitude (stiff environments).
    # Re-extract each left eigenvector from an SVD of Q(z_k), with a few
    # Newton refinement steps on the eigenvalue itself.
    size = q0.shape[0]
    refined_values = np.empty(chosen_values.size, dtype=complex)
    normalised = np.empty((chosen_values.size, size), dtype=complex)
    residuals = np.empty(chosen_values.size)
    for k, value in enumerate(chosen_values):
        polynomial = q0 + q1 * value + q2 * (value * value)
        vector = _left_null_vector(polynomial)
        residual = float(np.max(np.abs(vector @ polynomial)))
        best_value, best_vector, best_residual = value, vector, residual
        if residual > 1e-10 * max(1.0, float(np.max(np.abs(polynomial)))):
            # The QZ eigenvalue is not accurate enough for this root; try a
            # few Newton refinement steps and keep them only if they help.
            refined, refined_vector = refine_eigenpair(q0, q1, q2, value)
            if abs(refined) < 1.0 and abs(refined - value) < 1e-3 * max(1.0, abs(value)):
                refined_poly = q0 + q1 * refined + q2 * (refined * refined)
                refined_residual = float(np.max(np.abs(refined_vector @ refined_poly)))
                if refined_residual < best_residual:
                    best_value = refined
                    best_vector = refined_vector
                    best_residual = refined_residual
        refined_values[k] = best_value
        normalised[k] = _normalise_left_eigenvector(best_vector)
        # The raw vector from the SVD already has unit norm, so the residual
        # is directly comparable across eigenpairs.
        residuals[k] = best_residual

    order = np.argsort(np.abs(refined_values), kind="stable")
    return SpectralEigensystem(
        eigenvalues=refined_values[order],
        left_eigenvectors=normalised[order],
        residuals=residuals[order],
    )


def spectral_abscissa(matrix: np.ndarray) -> float:
    """The largest real part among the eigenvalues of ``matrix``.

    For the ML-matrices ``Q(z)`` (non-negative off-diagonal entries) the
    abscissa is attained by a real (Perron) eigenvalue; the decay-rate
    bisection in :mod:`repro.spectral.approximation` relies on this.
    """
    eigenvalues = np.linalg.eigvals(matrix)
    return float(np.max(eigenvalues.real))


def perron_left_null_vector(matrix: np.ndarray) -> np.ndarray:
    """A non-negative left null vector of ``matrix`` (which must be singular).

    Computed from the singular value decomposition: the left singular vector
    associated with the smallest singular value spans the left null space for
    a rank-deficient matrix.  The sign is fixed so the vector is non-negative
    (up to numerical noise) and it is normalised to sum to one.
    """
    _, singular_values, vt = np.linalg.svd(matrix.T)
    null_vector = vt[-1]
    smallest = singular_values[-1]
    scale = max(1.0, float(np.max(np.abs(matrix))))
    if smallest > 1e-6 * scale:
        raise SolverError(
            f"matrix is not numerically singular (smallest singular value {smallest:.3g}); "
            "cannot extract a null vector"
        )
    if np.sum(null_vector) < 0.0:
        null_vector = -null_vector
    if np.any(null_vector < -1e-6):
        raise SolverError("left null vector has significantly negative entries")
    null_vector = np.clip(null_vector, 0.0, None)
    total = null_vector.sum()
    if total <= 0.0:
        raise SolverError("left null vector is numerically zero")
    return null_vector / total
