"""Spectral-expansion machinery: the paper's primary analytical contribution.

Public API
----------

* :class:`ModulatedQueueMatrices` — the QBD matrices ``A``, ``B``, ``C_j`` and
  the characteristic-polynomial coefficients ``Q0, Q1, Q2`` (Section 3.1).
* :func:`solve_quadratic_eigenproblem`, :func:`eigenvalues_inside_unit_disk`,
  :class:`SpectralEigensystem` — the generalized eigenvalues/eigenvectors of
  ``Q(z)`` inside the unit disk (Eq. 17–18).
* :func:`solve_spectral`, :class:`SpectralSolution` — the exact steady-state
  solution (Eq. 19–20) with all performance metrics.
* :func:`solve_geometric`, :class:`GeometricSolution`,
  :func:`decay_rate_bisection`, :func:`decay_rate_from_eigensystem` — the
  heavy-load geometric approximation (Eq. 21).
"""

from .approximation import (
    GeometricSolution,
    decay_rate_bisection,
    decay_rate_from_eigensystem,
    solve_geometric,
)
from .eigen import (
    SpectralEigensystem,
    eigenvalues_inside_unit_disk,
    perron_left_null_vector,
    solve_quadratic_eigenproblem,
    spectral_abscissa,
)
from .qbd import ModulatedQueueMatrices
from .solution import SpectralSolution, solve_spectral

__all__ = [
    "ModulatedQueueMatrices",
    "SpectralEigensystem",
    "solve_quadratic_eigenproblem",
    "eigenvalues_inside_unit_disk",
    "spectral_abscissa",
    "perron_left_null_vector",
    "SpectralSolution",
    "solve_spectral",
    "GeometricSolution",
    "solve_geometric",
    "decay_rate_bisection",
    "decay_rate_from_eigensystem",
]
