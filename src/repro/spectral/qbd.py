"""Quasi-birth-death (QBD) representation of the Markov-modulated queue.

The unreliable multi-server queue of the paper is a Markov-modulated M/M/N
queue: its state is ``(operational mode, number of jobs)`` and transitions
change the job count by at most one.  Section 3.1 of the paper expresses the
transition rates through three families of ``s x s`` matrices:

* ``A`` — mode-changing transitions that leave the job count unchanged
  (breakdowns and repairs), with ``D^A`` the diagonal matrix of its row sums;
* ``B = lambda I`` — job arrivals (they do not change the mode);
* ``C_j`` — service completions when ``j`` jobs are present, a diagonal
  matrix with entries ``min(x_i, j) mu`` where ``x_i`` is the number of
  operative servers in mode ``i``.  For ``j >= N`` the matrix no longer
  depends on ``j`` and is written ``C``.

The class in this module materialises these matrices for a given model and
exposes the three coefficient matrices of the characteristic matrix
polynomial ``Q(z) = Q0 + Q1 z + Q2 z^2`` (paper Eq. 15–16):
``Q0 = B``, ``Q1 = A - D^A - B - C`` and ``Q2 = C``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from .._validation import check_non_negative_int, check_positive
from ..markov import BreakdownEnvironment


class ModulatedQueueMatrices:
    """The QBD matrix family of the unreliable multi-server queue.

    Parameters
    ----------
    environment:
        The Markovian environment (modes, matrix ``A``, operative counts).
    arrival_rate:
        The Poisson arrival rate ``lambda``.
    service_rate:
        The per-server exponential service rate ``mu``.
    """

    def __init__(
        self,
        environment: BreakdownEnvironment,
        arrival_rate: float,
        service_rate: float,
    ) -> None:
        self._environment = environment
        self._arrival_rate = check_positive(arrival_rate, "arrival_rate")
        self._service_rate = check_positive(service_rate, "service_rate")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def environment(self) -> BreakdownEnvironment:
        """The modulating environment."""
        return self._environment

    @property
    def arrival_rate(self) -> float:
        """The Poisson arrival rate ``lambda``."""
        return self._arrival_rate

    @property
    def service_rate(self) -> float:
        """The per-server service rate ``mu``."""
        return self._service_rate

    @property
    def num_modes(self) -> int:
        """The number of operational modes ``s``."""
        return self._environment.num_modes

    @property
    def num_servers(self) -> int:
        """The number of servers ``N`` (the boundary level of the QBD)."""
        return self._environment.num_servers

    # ------------------------------------------------------------------ #
    # The matrices of Section 3.1
    # ------------------------------------------------------------------ #

    @cached_property
    def mode_transition_matrix(self) -> np.ndarray:
        """The matrix ``A`` of mode-changing rates (zero diagonal)."""
        return self._environment.transition_matrix

    @cached_property
    def mode_row_sums(self) -> np.ndarray:
        """The diagonal matrix ``D^A`` of the row sums of ``A``."""
        return self._environment.row_sum_matrix

    @cached_property
    def arrival_matrix(self) -> np.ndarray:
        """The arrival matrix ``B = lambda I``."""
        return self._arrival_rate * np.eye(self.num_modes)

    def service_matrix(self, level: int) -> np.ndarray:
        """The service matrix ``C_j`` for ``j = level`` jobs in the system.

        Diagonal with entries ``min(x_i, j) mu``; ``C_0`` is the zero matrix
        by definition and ``C_j = C`` for ``j >= N``.
        """
        level = check_non_negative_int(level, "level")
        counts = self._environment.operative_counts
        busy_servers = np.minimum(counts, float(level))
        return np.diag(busy_servers * self._service_rate)

    @cached_property
    def repeating_service_matrix(self) -> np.ndarray:
        """The level-independent service matrix ``C`` valid for ``j >= N``."""
        return self.service_matrix(self.num_servers)

    def local_balance_matrix(self, level: int) -> np.ndarray:
        """The matrix multiplying ``v_j`` in the balance equation at ``level``.

        Equal to ``A - D^A - B - C_level``; this is the "stay at the same
        level" part of the generator including the diagonal loss terms.
        """
        return (
            self.mode_transition_matrix
            - self.mode_row_sums
            - self.arrival_matrix
            - self.service_matrix(level)
        )

    # ------------------------------------------------------------------ #
    # Characteristic polynomial coefficients (paper Eq. 15-16)
    # ------------------------------------------------------------------ #

    @cached_property
    def q0(self) -> np.ndarray:
        """``Q0 = B`` — the coefficient of ``z^0``."""
        return self.arrival_matrix

    @cached_property
    def q1(self) -> np.ndarray:
        """``Q1 = A - D^A - B - C`` — the coefficient of ``z^1``."""
        return (
            self.mode_transition_matrix
            - self.mode_row_sums
            - self.arrival_matrix
            - self.repeating_service_matrix
        )

    @cached_property
    def q2(self) -> np.ndarray:
        """``Q2 = C`` — the coefficient of ``z^2``."""
        return self.repeating_service_matrix

    def characteristic_polynomial(self, z: complex) -> np.ndarray:
        """Evaluate the characteristic matrix polynomial ``Q(z)`` (Eq. 16)."""
        return self.q0 + self.q1 * z + self.q2 * (z * z)

    # ------------------------------------------------------------------ #
    # Whole-process generator checks
    # ------------------------------------------------------------------ #

    def level_generator_row_sums(self, level: int) -> np.ndarray:
        """Row sums of the full generator restricted to states at ``level``.

        For every level the rates out of a state must balance the diagonal:
        ``A - D^A - B - C_level`` plus arrivals ``B`` plus departures
        ``C_level`` must have zero row sums.  Exposed for the test-suite.
        """
        total = (
            self.local_balance_matrix(level)
            + self.arrival_matrix
            + self.service_matrix(level)
        )
        return total.sum(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModulatedQueueMatrices(modes={self.num_modes}, servers={self.num_servers}, "
            f"arrival_rate={self._arrival_rate:.6g}, service_rate={self._service_rate:.6g})"
        )
