"""Exact steady-state solution of the model by spectral expansion.

This module implements Section 3.1 of the paper end to end:

1. build the QBD matrices ``A``, ``B``, ``C_j`` and the characteristic
   polynomial coefficients ``Q0, Q1, Q2`` (see :mod:`repro.spectral.qbd`);
2. compute the ``s`` generalized eigenvalues inside the unit disk and their
   left eigenvectors (paper Eq. 17–18, :mod:`repro.spectral.eigen`);
3. write the repeating-portion probability vectors as the spectral expansion
   ``v_j = sum_k gamma_k u_k z_k^j`` for ``j >= N`` (Eq. 19); for numerical
   conditioning the implementation works with the *scaled* coefficients
   ``c_k = gamma_k z_k^N`` so that ``v_j = sum_k c_k u_k z_k^(j-N)`` — the
   two forms are mathematically identical, but the scaled one keeps the
   boundary linear system well conditioned when some eigenvalues are tiny;
4. determine the boundary vectors ``v_0 .. v_{N-1}`` and the coefficients
   ``c_k`` from the balance equations at levels ``0 .. N`` plus the
   normalisation condition (Eq. 14, 20);
5. expose the queue-length distribution and all derived performance metrics
   through the :class:`SpectralSolution` object.

The closed forms used for the infinite sums (with ``t = j - N``) are

.. math::

    \\sum_{t \\ge 0} z^t = \\frac{1}{1 - z}, \\qquad
    \\sum_{t \\ge 0} (N + t) z^t = \\frac{N}{1 - z} + \\frac{z}{(1 - z)^2} .
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..exceptions import SolverError
from ..queueing.model import UnreliableQueueModel
from ..queueing.solution_base import QueueSolution
from .eigen import SpectralEigensystem, eigenvalues_inside_unit_disk
from .qbd import ModulatedQueueMatrices

#: Largest acceptable magnitude of the imaginary part left over after the
#: complex-conjugate eigenvalue contributions are combined.
_IMAGINARY_TOLERANCE = 1e-6

#: Largest acceptable violation of non-negativity in computed probabilities.
_NEGATIVITY_TOLERANCE = 1e-7

#: Largest acceptable residual of the boundary linear system (relative).
_BOUNDARY_RESIDUAL_TOLERANCE = 1e-6


class SpectralSolution(QueueSolution):
    """The exact spectral-expansion solution of an unreliable multi-server queue.

    Instances are created by :func:`solve_spectral` (or the convenience method
    :meth:`repro.queueing.model.UnreliableQueueModel.solve_spectral`); the
    constructor wires together the eigensystem and boundary solution and is
    not meant to be called directly by users.
    """

    def __init__(
        self,
        model: UnreliableQueueModel,
        matrices: ModulatedQueueMatrices,
        eigensystem: SpectralEigensystem,
        boundary_vectors: np.ndarray,
        expansion_coefficients: np.ndarray,
        boundary_residual: float,
    ) -> None:
        self._model = model
        self._matrices = matrices
        self._eigensystem = eigensystem
        self._boundary_vectors = boundary_vectors
        self._gammas = expansion_coefficients
        self._boundary_residual = boundary_residual
        # Pre-computed eigen-quantities used by every metric.
        self._z = eigensystem.eigenvalues
        self._u = eigensystem.left_eigenvectors
        self._u_sums = self._u.sum(axis=1)

    # ------------------------------------------------------------------ #
    # Model metadata
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> UnreliableQueueModel:
        """The model that was solved."""
        return self._model

    @property
    def arrival_rate(self) -> float:
        return self._model.arrival_rate

    @property
    def num_servers(self) -> int:
        return self._model.num_servers

    @property
    def num_modes(self) -> int:
        """The number of operational modes ``s``."""
        return self._matrices.num_modes

    @property
    def eigenvalues(self) -> np.ndarray:
        """The eigenvalues inside the unit disk, sorted by modulus (copy)."""
        return self._z.copy()

    @property
    def expansion_coefficients(self) -> np.ndarray:
        """The scaled expansion coefficients ``c_k = gamma_k z_k^N`` (copy).

        With these coefficients the repeating-portion vectors are
        ``v_j = sum_k c_k u_k z_k^(j - N)`` for ``j >= N``.
        """
        return self._gammas.copy()

    @property
    def decay_rate(self) -> float:
        """The dominant eigenvalue ``z_s``; the asymptotic queue-length decay rate."""
        return self._eigensystem.dominant_eigenvalue

    @property
    def boundary_residual(self) -> float:
        """Relative residual of the boundary linear system (diagnostic)."""
        return self._boundary_residual

    @property
    def boundary_vectors(self) -> np.ndarray:
        """The probability vectors ``v_0 .. v_{N-1}`` as an ``(N, s)`` array (copy)."""
        return self._boundary_vectors.copy()

    # ------------------------------------------------------------------ #
    # Level probabilities
    # ------------------------------------------------------------------ #

    def level_vector(self, num_jobs: int) -> np.ndarray:
        """The probability vector ``v_j`` over modes for ``j = num_jobs`` jobs."""
        if num_jobs < 0:
            raise SolverError(f"the number of jobs must be non-negative, got {num_jobs}")
        if num_jobs < self.num_servers:
            return self._boundary_vectors[num_jobs].copy()
        powers = self._z ** (num_jobs - self.num_servers)
        vector = (self._gammas * powers) @ self._u
        return _to_real(vector, context=f"level vector at j={num_jobs}")

    def queue_length_pmf(self, num_jobs: int) -> float:
        if num_jobs < 0:
            return 0.0
        if num_jobs < self.num_servers:
            return float(max(self._boundary_vectors[num_jobs].sum(), 0.0))
        powers = self._z ** (num_jobs - self.num_servers)
        value = np.sum(self._gammas * self._u_sums * powers)
        return float(max(_scalar_to_real(value, context=f"pmf at j={num_jobs}"), 0.0))

    @cached_property
    def _tail_mode_vector(self) -> np.ndarray:
        """``sum_{j >= N} v_j`` as a vector over modes."""
        z = self._z
        weights = self._gammas / (1.0 - z)
        return _to_real(weights @ self._u, context="tail mode vector")

    def mode_marginals(self) -> np.ndarray:
        total = self._boundary_vectors.sum(axis=0) + self._tail_mode_vector
        total = np.clip(total, 0.0, None)
        return total / total.sum()

    # ------------------------------------------------------------------ #
    # Moments and derived metrics
    # ------------------------------------------------------------------ #

    @cached_property
    def mean_queue_length(self) -> float:
        """The mean number of jobs present ``L`` (exact closed form)."""
        boundary_part = sum(
            j * float(self._boundary_vectors[j].sum()) for j in range(self.num_servers)
        )
        z = self._z
        n = self.num_servers
        tail_weights = self._gammas * self._u_sums * (n / (1.0 - z) + z / (1.0 - z) ** 2)
        tail_part = _scalar_to_real(np.sum(tail_weights), context="mean queue length tail")
        return float(boundary_part + tail_part)

    @cached_property
    def mean_jobs_in_service(self) -> float:
        """The mean number of busy (operative and serving) servers.

        Computed exactly as ``sum_{j,i} min(j, x_i) v_j[i]``; for a stable
        queue this equals ``lambda / mu`` (flow balance), which the test-suite
        uses as a strong correctness check.
        """
        counts = self._matrices.environment.operative_counts
        boundary_part = 0.0
        for j in range(self.num_servers):
            busy = np.minimum(counts, float(j))
            boundary_part += float(self._boundary_vectors[j] @ busy)
        tail_part = float(self._tail_mode_vector @ counts)
        return boundary_part + tail_part

    @property
    def mean_jobs_waiting(self) -> float:
        """The mean number of jobs not currently in service (exact)."""
        return self.mean_queue_length - self.mean_jobs_in_service

    @property
    def throughput(self) -> float:
        """The steady-state departure rate ``mu * E[busy servers]``."""
        return self._model.service_rate * self.mean_jobs_in_service

    @cached_property
    def probability_delay(self) -> float:
        """The probability that an arriving job cannot start service immediately.

        By PASTA this is the probability that the number of jobs present is
        at least the number of operative servers in the current mode.
        """
        counts = self._matrices.environment.operative_counts
        total = 0.0
        for j in range(self.num_servers):
            mask = counts <= float(j)
            total += float(self._boundary_vectors[j][mask].sum())
        total += float(self._tail_mode_vector.sum())
        return min(max(total, 0.0), 1.0)

    def queue_length_tail(self, num_jobs: int) -> float:
        """``P(jobs > num_jobs)`` using the geometric tails of the expansion."""
        if num_jobs < 0:
            return 1.0
        if num_jobs < self.num_servers - 1:
            return super().queue_length_tail(num_jobs)
        z = self._z
        start = num_jobs + 1
        weights = self._gammas * self._u_sums * z ** (start - self.num_servers) / (1.0 - z)
        value = _scalar_to_real(np.sum(weights), context=f"tail at j={num_jobs}")
        return float(min(max(value, 0.0), 1.0))

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    def normalisation_error(self) -> float:
        """How far the computed distribution is from summing to one."""
        boundary = float(self._boundary_vectors.sum())
        tail = float(self._tail_mode_vector.sum())
        return abs(boundary + tail - 1.0)

    def eigen_residual(self) -> float:
        """The largest residual among the computed eigenpairs."""
        return self._eigensystem.max_residual()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpectralSolution(N={self.num_servers}, s={self.num_modes}, "
            f"L={self.mean_queue_length:.4f}, decay_rate={self.decay_rate:.4f})"
        )


def _to_real(vector: np.ndarray, *, context: str) -> np.ndarray:
    """Drop a numerically negligible imaginary part, raising if it is not negligible."""
    magnitude = float(np.max(np.abs(vector))) if vector.size else 0.0
    imaginary = float(np.max(np.abs(vector.imag))) if np.iscomplexobj(vector) else 0.0
    if imaginary > _IMAGINARY_TOLERANCE * max(1.0, magnitude):
        raise SolverError(
            f"{context}: imaginary residue {imaginary:.3g} exceeds tolerance; "
            "the spectral solution is numerically unreliable"
        )
    return np.asarray(vector.real if np.iscomplexobj(vector) else vector, dtype=float)


def _scalar_to_real(value: complex, *, context: str) -> float:
    """Scalar version of :func:`_to_real`."""
    if abs(value.imag) > _IMAGINARY_TOLERANCE * max(1.0, abs(value)):
        raise SolverError(
            f"{context}: imaginary residue {abs(value.imag):.3g} exceeds tolerance; "
            "the spectral solution is numerically unreliable"
        )
    return float(value.real)


def _assemble_boundary_system(
    matrices: ModulatedQueueMatrices, eigensystem: SpectralEigensystem
) -> tuple[np.ndarray, np.ndarray]:
    """Build the linear system for the boundary vectors and expansion coefficients.

    The unknown vector is ``theta = (v_0, ..., v_{N-1}, c)`` of length
    ``(N + 1) s``, where ``c_k = gamma_k z_k^N`` are the scaled expansion
    coefficients.  The equations are the balance equations (paper Eq. 14) at
    levels ``0 .. N`` — with ``v_j`` for ``j >= N`` replaced by the spectral
    expansion ``v_j = sum_k c_k u_k z_k^(j-N)`` — plus the normalisation
    condition (Eq. 20).  The system is solved in the least-squares sense
    because exactly one balance equation is linearly dependent.
    """
    num_servers = matrices.num_servers
    num_modes = matrices.num_modes
    eigenvalues = eigensystem.eigenvalues
    left_vectors = eigensystem.left_eigenvectors
    num_eigen = eigenvalues.size

    total_unknowns = num_servers * num_modes + num_eigen
    num_equations = (num_servers + 1) * num_modes + 1
    system = np.zeros((num_equations, total_unknowns), dtype=complex)
    rhs = np.zeros(num_equations, dtype=complex)

    arrival = matrices.arrival_matrix

    def boundary_slice(level: int) -> slice:
        return slice(level * num_modes, (level + 1) * num_modes)

    gamma_slice = slice(num_servers * num_modes, total_unknowns)

    for level in range(num_servers + 1):
        row_block = slice(level * num_modes, (level + 1) * num_modes)
        local = matrices.local_balance_matrix(level)
        departures_above = matrices.service_matrix(level + 1)

        # Contribution of v_{level-1} (arrivals into this level).
        if level - 1 >= 0:
            # v_{level-1} is always a boundary unknown because level <= N.
            system[row_block, boundary_slice(level - 1)] += arrival.T

        # Contribution of v_level.
        if level < num_servers:
            system[row_block, boundary_slice(level)] += local.T
        else:
            # v_N comes from the expansion: v_N = sum_k c_k u_k (z_k^0 = 1).
            factors = (eigenvalues ** (level - num_servers))[:, np.newaxis] * left_vectors
            system[row_block, gamma_slice] += (factors @ local).T

        # Contribution of v_{level+1} (departures into this level).
        if level + 1 < num_servers:
            system[row_block, boundary_slice(level + 1)] += departures_above.T
        else:
            factors = (eigenvalues ** (level + 1 - num_servers))[:, np.newaxis] * left_vectors
            system[row_block, gamma_slice] += (factors @ departures_above).T

    # Normalisation: sum of all boundary probabilities plus the geometric tails.
    norm_row = num_equations - 1
    for level in range(num_servers):
        system[norm_row, boundary_slice(level)] = 1.0
    tail_factors = left_vectors.sum(axis=1) / (1.0 - eigenvalues)
    system[norm_row, gamma_slice] = tail_factors
    rhs[norm_row] = 1.0
    return system, rhs


def _solve_boundary_system(system: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the (slightly overdetermined) boundary system.

    The assembled system has ``(N + 1) s + 1`` rows for ``(N + 1) s``
    unknowns, but exactly one balance equation is linearly dependent on the
    others (the generator of the Markov process is singular).  Dropping the
    first balance equation therefore yields a square, non-singular system
    that a direct LU solve handles an order of magnitude faster than a
    least-squares factorisation of the full rectangular system.  The dropped
    equation is still included in the residual check performed by the caller,
    so an incorrect drop cannot go unnoticed; if the square system turns out
    singular the function falls back to the least-squares solve.
    """
    square_system = system[1:, :]
    square_rhs = rhs[1:]
    try:
        solution = np.linalg.solve(square_system, square_rhs)
        if np.all(np.isfinite(solution)):
            return solution
    except np.linalg.LinAlgError:
        pass
    solution, _, _, _ = np.linalg.lstsq(system, rhs, rcond=None)
    return solution


def solve_spectral(model: UnreliableQueueModel) -> SpectralSolution:
    """Solve an :class:`UnreliableQueueModel` exactly by spectral expansion.

    Raises
    ------
    UnstableQueueError
        If the stability condition (paper Eq. 11) is violated.
    ParameterError
        If the period distributions are not exponential/hyperexponential.
    SolverError
        If the eigenvalue count or the boundary system indicate numerical
        failure (the paper notes such problems appear for ``N`` greater than
        roughly 24 with the fitted parameters).
    """
    model.require_stable()
    environment = model.environment  # validates the period distributions
    matrices = ModulatedQueueMatrices(
        environment=environment,
        arrival_rate=model.arrival_rate,
        service_rate=model.service_rate,
    )
    eigensystem = eigenvalues_inside_unit_disk(
        matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
    )

    system, rhs = _assemble_boundary_system(matrices, eigensystem)
    solution = _solve_boundary_system(system, rhs)
    residual_norm = float(np.linalg.norm(system @ solution - rhs))
    if residual_norm > _BOUNDARY_RESIDUAL_TOLERANCE:
        raise SolverError(
            f"boundary system residual {residual_norm:.3g} exceeds tolerance; "
            "the model is too ill-conditioned for the exact solution "
            "(consider the geometric approximation)"
        )

    num_modes = matrices.num_modes
    num_servers = matrices.num_servers
    boundary_flat = solution[: num_servers * num_modes]
    gammas = solution[num_servers * num_modes :]
    boundary_matrix = boundary_flat.reshape(num_servers, num_modes)
    boundary_real = _to_real(boundary_matrix, context="boundary probability vectors")
    if float(np.min(boundary_real)) < -_NEGATIVITY_TOLERANCE:
        raise SolverError(
            "boundary probabilities have significantly negative entries "
            f"(min {float(np.min(boundary_real)):.3g}); the solution is unreliable"
        )
    boundary_real = np.clip(boundary_real, 0.0, None)

    return SpectralSolution(
        model=model,
        matrices=matrices,
        eigensystem=eigensystem,
        boundary_vectors=boundary_real,
        expansion_coefficients=gammas,
        boundary_residual=residual_norm,
    )
