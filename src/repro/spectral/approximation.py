"""The geometric (heavy-load) approximation of Section 3.2.

The exact spectral expansion needs all ``s`` eigenvalues inside the unit disk
plus the boundary solve; for large ``N`` or many phases it becomes expensive
and numerically fragile (the paper observes warnings from about ``N = 24``).
The approximation keeps only the dominant eigenvalue ``z_s`` — always real
and positive — and assumes the queue length is geometric with parameter
``z_s`` and independent of the operational mode (paper Eq. 21):

.. math::

    v_j = \\frac{u_s}{u_s \\mathbf 1} (1 - z_s) z_s^j , \\qquad j = 0, 1, ...

It requires only one eigenvalue/eigenvector pair and is asymptotically exact
as the load approaches saturation (Mitrani 2005, reference [4] of the paper).

Two ways of computing ``z_s`` are provided:

* :func:`decay_rate_bisection` — the numerically robust method: ``z_s`` is
  the unique root in ``(0, 1)`` of the spectral abscissa of ``Q(z)`` (the
  matrices ``Q(z)`` have non-negative off-diagonal entries, so their spectral
  abscissa is a real Perron eigenvalue, convex in ``z``, equal to ``0`` at
  ``z = 1``); Brent's method finds it without ever forming the full
  eigensystem.
* :func:`decay_rate_from_eigensystem` — take the largest-modulus eigenvalue
  of the full quadratic eigenproblem; used for cross-validation in tests.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.optimize

from ..exceptions import SolverError
from ..queueing.model import UnreliableQueueModel
from ..queueing.solution_base import QueueSolution
from .eigen import (
    eigenvalues_inside_unit_disk,
    perron_left_null_vector,
    spectral_abscissa,
)
from .qbd import ModulatedQueueMatrices


def decay_rate_bisection(
    matrices: ModulatedQueueMatrices,
    *,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """The dominant eigenvalue ``z_s`` by root-finding on the spectral abscissa.

    Parameters
    ----------
    matrices:
        The QBD matrices of the model (must describe a stable queue).
    tolerance:
        Absolute tolerance on ``z_s``.
    max_iterations:
        Iteration budget passed to Brent's method.

    Raises
    ------
    SolverError
        If no sign change is bracketed in ``(0, 1)``, which happens when the
        queue is unstable (the root moves to ``z >= 1``).
    """

    def abscissa(z: float) -> float:
        return spectral_abscissa(matrices.characteristic_polynomial(z))

    # The abscissa is positive at z -> 0+ (it tends to the arrival rate),
    # zero at z = 1, and negative just left of 1 for a stable queue.  Scan for
    # a bracketing interval starting near 1.
    upper = 1.0 - 1e-12
    value_upper = abscissa(upper)
    if value_upper >= 0.0:
        raise SolverError(
            "the spectral abscissa is non-negative arbitrarily close to z = 1; "
            "the queue appears to be unstable or critically loaded"
        )
    lower = 0.5
    value_lower = abscissa(lower)
    attempts = 0
    while value_lower < 0.0 and attempts < 60:
        lower *= 0.5
        value_lower = abscissa(lower)
        attempts += 1
    if value_lower < 0.0:
        raise SolverError("failed to bracket the decay rate in (0, 1)")
    root, result = scipy.optimize.brentq(
        abscissa,
        lower,
        upper,
        xtol=tolerance,
        maxiter=max_iterations,
        full_output=True,
    )
    if not result.converged:  # pragma: no cover - brentq rarely fails once bracketed
        raise SolverError("Brent iteration for the decay rate did not converge")
    return float(root)


def decay_rate_from_eigensystem(matrices: ModulatedQueueMatrices) -> float:
    """The dominant eigenvalue obtained from the full quadratic eigenproblem."""
    eigensystem = eigenvalues_inside_unit_disk(
        matrices.q0, matrices.q1, matrices.q2, expected_count=matrices.num_modes
    )
    return eigensystem.dominant_eigenvalue


class GeometricSolution(QueueSolution):
    """The geometric approximation of the queue-length distribution (Eq. 21).

    The queue length is geometric with parameter ``z_s`` and independent of
    the operational mode, whose marginal distribution is the normalised
    dominant left eigenvector ``u_s / (u_s 1)``.
    """

    def __init__(
        self,
        model: UnreliableQueueModel,
        decay_rate: float,
        mode_vector: np.ndarray,
    ) -> None:
        if not 0.0 < decay_rate < 1.0:
            raise SolverError(f"the decay rate must lie in (0, 1), got {decay_rate}")
        self._model = model
        self._decay_rate = float(decay_rate)
        total = float(np.sum(mode_vector))
        if total <= 0.0:
            raise SolverError("the dominant eigenvector has non-positive total mass")
        self._mode_vector = np.asarray(mode_vector, dtype=float) / total

    # ------------------------------------------------------------------ #
    # Metadata
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> UnreliableQueueModel:
        """The model that was approximated."""
        return self._model

    @property
    def arrival_rate(self) -> float:
        return self._model.arrival_rate

    @property
    def num_servers(self) -> int:
        return self._model.num_servers

    @property
    def decay_rate(self) -> float:
        """The dominant eigenvalue ``z_s`` (the geometric parameter)."""
        return self._decay_rate

    # ------------------------------------------------------------------ #
    # Queue-length law
    # ------------------------------------------------------------------ #

    def level_vector(self, num_jobs: int) -> np.ndarray:
        """The approximate probability vector over modes at level ``num_jobs``."""
        if num_jobs < 0:
            raise SolverError(f"the number of jobs must be non-negative, got {num_jobs}")
        return (
            self._mode_vector
            * (1.0 - self._decay_rate)
            * self._decay_rate**num_jobs
        )

    def queue_length_pmf(self, num_jobs: int) -> float:
        if num_jobs < 0:
            return 0.0
        return float((1.0 - self._decay_rate) * self._decay_rate**num_jobs)

    def queue_length_tail(self, num_jobs: int) -> float:
        if num_jobs < 0:
            return 1.0
        return float(self._decay_rate ** (num_jobs + 1))

    def mode_marginals(self) -> np.ndarray:
        return self._mode_vector.copy()

    @cached_property
    def mean_queue_length(self) -> float:
        """The geometric mean ``z_s / (1 - z_s)``."""
        return self._decay_rate / (1.0 - self._decay_rate)

    @property
    def mean_jobs_waiting(self) -> float:
        """``E[(jobs - N)^+]`` under the geometric law (closed form)."""
        z = self._decay_rate
        return float(z ** (self.num_servers + 1) / (1.0 - z))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeometricSolution(N={self.num_servers}, z_s={self._decay_rate:.6f}, "
            f"L={self.mean_queue_length:.4f})"
        )


def solve_geometric(
    model: UnreliableQueueModel, *, method: str = "bisection"
) -> GeometricSolution:
    """Approximate an :class:`UnreliableQueueModel` by the geometric law of Eq. 21.

    Parameters
    ----------
    model:
        The queueing model (must be stable and have exponential or
        hyperexponential period distributions).
    method:
        ``"bisection"`` (default) computes the dominant eigenvalue by the
        robust spectral-abscissa root finder; ``"eigensystem"`` extracts it
        from the full quadratic eigenproblem (slower, used for validation).

    Raises
    ------
    UnstableQueueError
        If the stability condition (paper Eq. 11) is violated.
    SolverError
        If the decay rate cannot be computed.
    """
    model.require_stable()
    matrices = ModulatedQueueMatrices(
        environment=model.environment,
        arrival_rate=model.arrival_rate,
        service_rate=model.service_rate,
    )
    if method == "bisection":
        decay = decay_rate_bisection(matrices)
    elif method == "eigensystem":
        decay = decay_rate_from_eigensystem(matrices)
    else:
        raise SolverError(f"unknown decay-rate method: {method!r}")
    polynomial = matrices.characteristic_polynomial(decay)
    mode_vector = perron_left_null_vector(polynomial)
    return GeometricSolution(model=model, decay_rate=decay, mode_vector=mode_vector)
