"""Figure-9 experiment: response time vs the number of servers.

With the fitted operative-period distribution, exponential repairs
(``eta = 25``), ``mu = 1`` and ``lambda = 7.5``, the mean response time ``W``
is evaluated by both the exact spectral solution and the geometric
approximation for ``N = 8 .. 13``.  The paper uses the figure to answer a
sizing question: to keep the mean response time below 1.5, at least 9 servers
are needed.  It also notes that on this occasion the approximation
*underestimates* the response time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..optimization import minimum_servers_for_response_time
from ..queueing.model import UnreliableQueueModel
from ..sweeps import SweepRunner, SweepSpec
from . import parameters
from .reporting import format_table


@dataclass(frozen=True)
class Figure9Point:
    """Exact and approximate response times for one server count.

    Attributes
    ----------
    num_servers:
        The number of servers ``N``.
    exact_response_time, approximate_response_time:
        Mean response times from the exact solution and the approximation.
    """

    num_servers: int
    exact_response_time: float
    approximate_response_time: float


@dataclass(frozen=True)
class Figure9Result:
    """The Figure-9 curves and the answer to the sizing question.

    Attributes
    ----------
    points:
        The evaluated response times per server count.
    target_response_time:
        The response-time target discussed in the paper (1.5).
    required_servers:
        The smallest evaluated ``N`` whose exact response time meets the
        target (the paper reports 9).
    paper_required_servers:
        The value reported in the paper, for comparison.
    """

    points: tuple[Figure9Point, ...]
    target_response_time: float
    required_servers: int
    paper_required_servers: int

    def to_text(self) -> str:
        """Render the curves and the sizing answer."""
        rows = [
            (point.num_servers, point.exact_response_time, point.approximate_response_time)
            for point in self.points
        ]
        table = format_table(
            ("N", "W exact", "W approximation"),
            rows,
            title="Figure 9: mean response time vs number of servers (lambda = 7.5)",
        )
        sizing = format_table(
            ("target W", "required N (measured)", "required N (paper)"),
            [(self.target_response_time, self.required_servers, self.paper_required_servers)],
            title="Sizing question",
        )
        return table + "\n\n" + sizing


def base_model(num_servers: int) -> UnreliableQueueModel:
    """The Figure-9 model with ``num_servers`` servers."""
    return UnreliableQueueModel(
        num_servers=num_servers,
        arrival_rate=parameters.FIGURE9_ARRIVAL_RATE,
        service_rate=parameters.SERVICE_RATE,
        operative=parameters.FITTED_OPERATIVE,
        inoperative=parameters.FIGURE5_INOPERATIVE,
    )


def sweep_spec(server_counts: tuple[int, ...]) -> SweepSpec:
    """The Figure-9 grid: each server count solved exactly and approximately."""
    return SweepSpec(
        base_model=base_model(server_counts[0]),
        axes=[("num_servers", server_counts), ("solver", ("spectral", "geometric"))],
        name="figure9",
    )


def run_figure9(
    *,
    server_counts: tuple[int, ...] = parameters.FIGURE9_SERVER_COUNTS,
    target_response_time: float = parameters.FIGURE9_RESPONSE_TIME_TARGET,
    runner: SweepRunner | None = None,
) -> Figure9Result:
    """Evaluate the Figure-9 curves and the minimum-server question."""
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(server_counts))
    points: list[Figure9Point] = []
    for count in server_counts:
        exact_row = results.find(num_servers=count, solver="spectral")
        approximate_row = results.find(num_servers=count, solver="geometric")
        points.append(
            Figure9Point(
                num_servers=count,
                exact_response_time=exact_row.metric("mean_response_time"),
                approximate_response_time=approximate_row.metric("mean_response_time"),
            )
        )
    sizing = minimum_servers_for_response_time(
        base_model(min(server_counts)),
        target_response_time,
        solver="spectral",
        max_servers=max(server_counts) + 10,
    )
    return Figure9Result(
        points=tuple(points),
        target_response_time=target_response_time,
        required_servers=sizing.required_servers,
        paper_required_servers=parameters.FIGURE9_PAPER_MINIMUM_SERVERS,
    )
