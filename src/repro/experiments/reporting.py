"""Plain-text reporting helpers for the experiment harness.

Every experiment driver returns a structured result object and can render it
as a plain-text table whose rows mirror the series plotted in the paper.  The
helpers here keep that formatting consistent (fixed-width columns, explicit
headers, no external dependencies) so the benchmark harness and the examples
can simply print the returned strings.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render a list of rows as a fixed-width text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Iterable of rows; each row must have the same length as ``headers``.
        Floats are formatted with ``float_format``; other values use ``str``.
    title:
        Optional title printed above the table.
    float_format:
        Format string applied to float cells.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, bool):
                rendered.append("yes" if cell else "no")
            elif isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line([str(header) for header in headers]))
    lines.append(render_line(["-" * width for width in widths]))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_key_values(pairs: Sequence[tuple[str, object]], *, title: str | None = None) -> str:
    """Render ``(name, value)`` pairs as an aligned two-column block."""
    width = max((len(name) for name, _ in pairs), default=0)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for name, value in pairs:
        if isinstance(value, float):
            rendered = f"{value:.6g}"
        else:
            rendered = str(value)
        lines.append(f"{name.ljust(width)}  {rendered}")
    return "\n".join(lines)
