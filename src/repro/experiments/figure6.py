"""Figure-6 experiment: queue length vs operative-period variability.

The paper keeps the mean operative period fixed at 34.62 (``xi = 0.0289``)
and the mean repair time at 5 (``eta = 0.2``), with ``N = 10`` servers and
``mu = 1``, and varies the squared coefficient of variation ``C^2`` of the
operative periods.  The mean queue length ``L`` is plotted against ``C^2``
for arrival rates 8.5 and 8.6.  The first point of each curve, ``C^2 = 0``
(deterministic operative periods), cannot be represented by a Markovian
environment and is obtained by simulation, exactly as in the paper.

The qualitative findings to reproduce: ``L`` grows with ``C^2``; the effect
is mild at the lower load and pronounced at the higher one, so assuming
exponential operative periods (``C^2 = 1``) can seriously underestimate the
queue at heavy load.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..distributions import Deterministic, Distribution, Exponential, HyperExponential
from ..queueing.model import UnreliableQueueModel
from ..solvers import SolverPolicy
from ..sweeps import SweepRunner, SweepSpec
from . import parameters
from .reporting import format_table


@dataclass(frozen=True)
class Figure6Point:
    """One point of a Figure-6 curve.

    Attributes
    ----------
    scv:
        The squared coefficient of variation of the operative periods.
    mean_queue_length:
        The mean number of jobs ``L``.
    method:
        ``"spectral"`` for analytically solved points, ``"simulation"`` for
        the deterministic ``C^2 = 0`` point.
    """

    scv: float
    mean_queue_length: float
    method: str


@dataclass(frozen=True)
class Figure6Result:
    """The two Figure-6 curves (one per arrival rate)."""

    curves: dict[float, tuple[Figure6Point, ...]]

    def to_text(self) -> str:
        """Render the curves as the series plotted in Figure 6."""
        rates = sorted(self.curves)
        scvs = [point.scv for point in self.curves[rates[0]]]
        rows = []
        for index, scv in enumerate(scvs):
            row: list[object] = [scv]
            for rate in rates:
                row.append(self.curves[rate][index].mean_queue_length)
            row.append(self.curves[rates[0]][index].method)
            rows.append(row)
        headers = ["C^2"] + [f"L (lambda={rate})" for rate in rates] + ["method"]
        return format_table(headers, rows, title="Figure 6: queue length vs C^2 of operative periods")


def operative_distribution_for_scv(
    scv: float, mean: float = parameters.MEAN_OPERATIVE_PERIOD
) -> Distribution:
    """The operative-period distribution used for a given ``C^2``.

    ``C^2 = 0`` maps to a deterministic period, ``C^2 = 1`` to an exponential
    one and ``C^2 > 1`` to the balanced-means 2-phase hyperexponential with
    the same mean — mirroring how the paper varies the variability while
    keeping the mean fixed.
    """
    if scv < 0.0:
        raise ValueError(f"scv must be non-negative, got {scv}")
    if scv == 0.0:
        return Deterministic(value=mean)
    if scv == 1.0:
        return Exponential(rate=1.0 / mean)
    return HyperExponential.from_mean_and_scv(mean, scv)


def _model_for(arrival_rate: float, scv: float) -> UnreliableQueueModel:
    return UnreliableQueueModel(
        num_servers=parameters.FIGURE6_NUM_SERVERS,
        arrival_rate=arrival_rate,
        service_rate=parameters.SERVICE_RATE,
        operative=operative_distribution_for_scv(scv),
        inoperative=Exponential(rate=parameters.FIGURE6_REPAIR_RATE),
    )


def _grid_model(base: UnreliableQueueModel, params: Mapping[str, object]) -> UnreliableQueueModel:
    """Sweep model factory: map an ``(arrival_rate, scv)`` cell to its model."""
    return _model_for(float(params["arrival_rate"]), float(params["scv"]))


def sweep_spec(
    arrival_rates: tuple[float, ...],
    scv_values: tuple[float, ...],
    simulation_horizon: float,
    simulation_seed: int,
) -> SweepSpec:
    """The Figure-6 grid as a declarative sweep spec.

    The ``C^2 = 0`` cells carry a ``simulate`` policy (deterministic periods
    have no Markovian environment); all other cells are solved exactly.
    """
    simulate = SolverPolicy(
        order=("simulate",),
        simulate_horizon=simulation_horizon,
        simulate_seed=simulation_seed,
        simulate_num_batches=10,
    )
    spectral = SolverPolicy(order=("spectral",))

    def policy_for(params: Mapping[str, object]) -> SolverPolicy:
        return simulate if float(params["scv"]) == 0.0 else spectral

    return SweepSpec(
        base_model=_model_for(arrival_rates[0], 1.0),
        axes=[("arrival_rate", arrival_rates), ("scv", scv_values)],
        policy=spectral,
        model_factory=_grid_model,
        point_policy=policy_for,
        name="figure6",
    )


def run_figure6(
    *,
    arrival_rates: tuple[float, ...] = parameters.FIGURE6_ARRIVAL_RATES,
    scv_values: tuple[float, ...] = parameters.FIGURE6_SCV_VALUES,
    simulation_horizon: float = 200_000.0,
    simulation_seed: int = 61,
    runner: SweepRunner | None = None,
) -> Figure6Result:
    """Evaluate the Figure-6 curves through the sweep engine.

    Parameters
    ----------
    arrival_rates:
        Arrival rates of the curves (the paper uses 8.5 and 8.6).
    scv_values:
        The ``C^2`` values on the x-axis; any value of exactly 0 is evaluated
        by simulation, everything else analytically.
    simulation_horizon:
        Simulated time for the deterministic point (the system is heavily
        loaded, so a long horizon is needed for a stable estimate).
    simulation_seed:
        Seed of the simulation run.
    runner:
        The sweep runner to evaluate with (a fresh serial one when omitted).
    """
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(
        sweep_spec(arrival_rates, scv_values, simulation_horizon, simulation_seed)
    )
    curves: dict[float, tuple[Figure6Point, ...]] = {}
    for rate in arrival_rates:
        points = [
            Figure6Point(
                scv=float(row.parameters["scv"]),
                mean_queue_length=row.metric("mean_queue_length"),
                method="simulation" if row.solver == "simulate" else str(row.solver),
            )
            for row in results.select(arrival_rate=rate)
        ]
        curves[rate] = tuple(points)
    return Figure6Result(curves=curves)
