"""Figure-5 experiment: cost as a function of the number of servers.

The paper fixes the fitted operative-period distribution, exponential repairs
with rate ``eta = 25``, service rate ``mu = 1`` and cost coefficients
``c1 = 4`` (holding) and ``c2 = 1`` (server), then plots the total cost
``C = c1 L + c2 N`` against ``N`` for arrival rates 7.0, 8.0 and 8.5.  The
reported optima are ``N = 11``, ``12`` and ``13`` respectively, and the
heavier the load the larger the optimal ``N``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..optimization import CostCurve, cost_curve
from ..queueing.model import UnreliableQueueModel
from . import parameters
from .reporting import format_table


@dataclass(frozen=True)
class Figure5Result:
    """Cost curves for the three arrival rates of Figure 5.

    Attributes
    ----------
    curves:
        Mapping from arrival rate to the evaluated :class:`CostCurve`.
    optima:
        Mapping from arrival rate to the optimal number of servers found.
    paper_optima:
        The optima reported in the paper, for side-by-side comparison.
    """

    curves: dict[float, CostCurve]
    optima: dict[float, int]
    paper_optima: dict[float, int]

    def to_text(self) -> str:
        """Render the cost table and the optimum comparison."""
        server_counts = [point.num_servers for point in next(iter(self.curves.values())).points]
        rows = []
        for count in server_counts:
            row: list[object] = [count]
            for rate in sorted(self.curves):
                matching = [p for p in self.curves[rate].points if p.num_servers == count]
                row.append(matching[0].cost if matching else float("nan"))
            rows.append(row)
        headers = ["N"] + [f"C (lambda={rate})" for rate in sorted(self.curves)]
        table = format_table(headers, rows, title="Figure 5: cost vs number of servers")

        optimum_rows = [
            (rate, self.optima[rate], self.paper_optima.get(rate, "-"))
            for rate in sorted(self.optima)
        ]
        optima_table = format_table(
            ("arrival rate", "optimal N (measured)", "optimal N (paper)"),
            optimum_rows,
            title="Figure 5: optimal number of servers",
        )
        return table + "\n\n" + optima_table


def base_model(arrival_rate: float, num_servers: int = 10) -> UnreliableQueueModel:
    """The Figure-5 base model for a given arrival rate."""
    return UnreliableQueueModel(
        num_servers=num_servers,
        arrival_rate=arrival_rate,
        service_rate=parameters.SERVICE_RATE,
        operative=parameters.FITTED_OPERATIVE,
        inoperative=parameters.FIGURE5_INOPERATIVE,
    )


def run_figure5(
    *,
    arrival_rates: tuple[float, ...] = parameters.FIGURE5_ARRIVAL_RATES,
    server_counts: tuple[int, ...] = parameters.FIGURE5_SERVER_COUNTS,
    solver: str = "spectral",
) -> Figure5Result:
    """Evaluate the Figure-5 cost curves.

    Parameters
    ----------
    arrival_rates:
        The arrival rates to sweep (the paper uses 7.0, 8.0, 8.5).
    server_counts:
        The server counts on the x-axis (the paper uses 9..17).
    solver:
        ``"spectral"`` for the exact solution (default) or ``"geometric"``
        for the fast approximation (used by quick test runs).
    """
    curves: dict[float, CostCurve] = {}
    optima: dict[float, int] = {}
    for rate in arrival_rates:
        curve = cost_curve(
            base_model(rate),
            server_counts,
            holding_cost=parameters.FIGURE5_HOLDING_COST,
            server_cost=parameters.FIGURE5_SERVER_COST,
            solver=solver,
        )
        curves[rate] = curve
        optima[rate] = curve.optimal_servers
    return Figure5Result(
        curves=curves,
        optima=optima,
        paper_optima=dict(parameters.FIGURE5_PAPER_OPTIMA),
    )
