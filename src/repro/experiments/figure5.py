"""Figure-5 experiment: cost as a function of the number of servers.

The paper fixes the fitted operative-period distribution, exponential repairs
with rate ``eta = 25``, service rate ``mu = 1`` and cost coefficients
``c1 = 4`` (holding) and ``c2 = 1`` (server), then plots the total cost
``C = c1 L + c2 N`` against ``N`` for arrival rates 7.0, 8.0 and 8.5.  The
reported optima are ``N = 11``, ``12`` and ``13`` respectively, and the
heavier the load the larger the optimal ``N``.

The grid is evaluated through the :mod:`repro.sweeps` engine: one spec over
``(arrival_rate, num_servers)``; the cost is derived from the mean queue
length of each row.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import check_positive_int
from ..optimization import CostCurve, CostPoint
from ..queueing.model import UnreliableQueueModel
from ..solvers import SolverPolicy
from ..sweeps import SweepRunner, SweepSpec
from . import parameters
from .reporting import format_table


@dataclass(frozen=True)
class Figure5Result:
    """Cost curves for the three arrival rates of Figure 5.

    Attributes
    ----------
    curves:
        Mapping from arrival rate to the evaluated :class:`CostCurve`.
    optima:
        Mapping from arrival rate to the optimal number of servers found.
    paper_optima:
        The optima reported in the paper, for side-by-side comparison.
    """

    curves: dict[float, CostCurve]
    optima: dict[float, int]
    paper_optima: dict[float, int]

    def to_text(self) -> str:
        """Render the cost table and the optimum comparison."""
        server_counts = [point.num_servers for point in next(iter(self.curves.values())).points]
        rows = []
        for count in server_counts:
            row: list[object] = [count]
            for rate in sorted(self.curves):
                matching = [p for p in self.curves[rate].points if p.num_servers == count]
                row.append(matching[0].cost if matching else float("nan"))
            rows.append(row)
        headers = ["N"] + [f"C (lambda={rate})" for rate in sorted(self.curves)]
        table = format_table(headers, rows, title="Figure 5: cost vs number of servers")

        optimum_rows = [
            (rate, self.optima[rate], self.paper_optima.get(rate, "-"))
            for rate in sorted(self.optima)
        ]
        optima_table = format_table(
            ("arrival rate", "optimal N (measured)", "optimal N (paper)"),
            optimum_rows,
            title="Figure 5: optimal number of servers",
        )
        return table + "\n\n" + optima_table


def base_model(arrival_rate: float, num_servers: int = 10) -> UnreliableQueueModel:
    """The Figure-5 base model for a given arrival rate."""
    return UnreliableQueueModel(
        num_servers=num_servers,
        arrival_rate=arrival_rate,
        service_rate=parameters.SERVICE_RATE,
        operative=parameters.FITTED_OPERATIVE,
        inoperative=parameters.FIGURE5_INOPERATIVE,
    )


def sweep_spec(
    arrival_rates: tuple[float, ...],
    server_counts: tuple[int, ...],
    solver: str = "spectral",
) -> SweepSpec:
    """The Figure-5 grid as a declarative sweep spec."""
    counts = tuple(sorted({check_positive_int(count, "server count") for count in server_counts}))
    return SweepSpec(
        base_model=base_model(arrival_rates[0]),
        axes=[("arrival_rate", arrival_rates), ("num_servers", counts)],
        policy=SolverPolicy(order=(solver,)),
        name="figure5",
    )


def run_figure5(
    *,
    arrival_rates: tuple[float, ...] = parameters.FIGURE5_ARRIVAL_RATES,
    server_counts: tuple[int, ...] = parameters.FIGURE5_SERVER_COUNTS,
    solver: str = "spectral",
    runner: SweepRunner | None = None,
) -> Figure5Result:
    """Evaluate the Figure-5 cost curves through the sweep engine.

    Parameters
    ----------
    arrival_rates:
        The arrival rates to sweep (the paper uses 7.0, 8.0, 8.5).
    server_counts:
        The server counts on the x-axis (the paper uses 9..17).
    solver:
        ``"spectral"`` for the exact solution (default) or ``"geometric"``
        for the fast approximation (used by quick test runs).
    runner:
        The sweep runner to evaluate with (a fresh serial one when omitted);
        pass a parallel runner to fan the grid out over worker processes.
    """
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(arrival_rates, server_counts, solver))
    holding_cost = float(parameters.FIGURE5_HOLDING_COST)
    server_cost = float(parameters.FIGURE5_SERVER_COST)

    curves: dict[float, CostCurve] = {}
    optima: dict[float, int] = {}
    for rate in arrival_rates:
        points = []
        for row in results.select(arrival_rate=rate):
            count = int(row.parameters["num_servers"])
            mean_jobs = row.metric("mean_queue_length") if row.stable else math.inf
            points.append(
                CostPoint(
                    num_servers=count,
                    mean_queue_length=mean_jobs,
                    cost=(
                        holding_cost * mean_jobs + server_cost * count
                        if row.stable
                        else math.inf
                    ),
                    stable=row.stable,
                )
            )
        curve = CostCurve(
            points=tuple(points), holding_cost=holding_cost, server_cost=server_cost
        )
        curves[rate] = curve
        optima[rate] = curve.optimal_servers
    return Figure5Result(
        curves=curves,
        optima=optima,
        paper_optima=dict(parameters.FIGURE5_PAPER_OPTIMA),
    )
