"""Experiment harness: one driver per table/figure of the paper.

Every Section-4 figure driver declares its grid as a
:class:`repro.sweeps.SweepSpec` (see each module's ``sweep_spec`` function)
and evaluates it through a shared :class:`repro.sweeps.SweepRunner`, so the
whole suite can run serially or across worker processes
(``run_all_experiments(parallel=True)``) with identical numbers.

Public API
----------

* :func:`run_section2`, :class:`Section2Result`, :class:`PeriodAnalysis` —
  the Section-2 trace analysis (Figures 3–4).
* :func:`run_figure5` … :func:`run_figure9` with their result classes — the
  Section-4 numerical experiments.
* :func:`run_all_experiments`, :func:`render_report`,
  :class:`ExperimentReport` — orchestration helpers.
* :mod:`repro.experiments.parameters` — the published parameter values, as a
  single source of truth.
* :func:`format_table`, :func:`format_key_values` — plain-text rendering.
"""

from . import parameters
from .figure5 import Figure5Result, run_figure5
from .figure6 import Figure6Point, Figure6Result, operative_distribution_for_scv, run_figure6
from .figure7 import Figure7Point, Figure7Result, run_figure7
from .figure8 import Figure8Point, Figure8Result, model_for_load, run_figure8
from .figure9 import Figure9Point, Figure9Result, run_figure9
from .reporting import format_key_values, format_table
from .runner import ExperimentReport, render_report, run_all_experiments
from .section2 import PeriodAnalysis, Section2Result, fitted_distributions, run_section2

__all__ = [
    "parameters",
    "run_section2",
    "Section2Result",
    "PeriodAnalysis",
    "fitted_distributions",
    "run_figure5",
    "Figure5Result",
    "run_figure6",
    "Figure6Result",
    "Figure6Point",
    "operative_distribution_for_scv",
    "run_figure7",
    "Figure7Result",
    "Figure7Point",
    "run_figure8",
    "Figure8Result",
    "Figure8Point",
    "model_for_load",
    "run_figure9",
    "Figure9Result",
    "Figure9Point",
    "run_all_experiments",
    "render_report",
    "ExperimentReport",
    "format_table",
    "format_key_values",
]
