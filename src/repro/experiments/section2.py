"""Section-2 experiment: empirical analysis of the breakdown trace (Figures 3–4).

The experiment reproduces the statistical pipeline of Section 2 of the paper
on the synthetic Sun-like trace (the original data set is confidential; see
DESIGN.md for the substitution argument):

1. load the trace, discard anomalous rows (Time Between Events smaller than
   Outage Duration) and derive the operative periods (Figure 2);
2. build histogram-based empirical densities — 50 intervals for the operative
   periods over ``[0, 250]``, 40 intervals for the inoperative periods over
   ``[0, 1.2]`` — and estimate the moments and coefficients of variation;
3. test the exponential hypothesis with the Kolmogorov–Smirnov statistic (the
   paper reports ``D = 0.4742`` for operative periods, a strong rejection);
4. fit 2-phase hyperexponential distributions by moment matching and test
   them (the paper reports ``D = 0.1412`` and ``D = 0.1832``, both accepted);
5. additionally test the single-exponential simplification of the inoperative
   periods (mean 0.04), which the paper notes passes at the 5% level.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..data import BreakdownTrace, SyntheticTraceConfig, generate_sun_like_trace
from ..distributions import Distribution, Exponential, HyperExponential
from ..fitting import fit_exponential, fit_two_phase_from_moments
from ..stats import EmpiricalDensity, KSResult, estimate_moments, ks_test_grid
from .reporting import format_key_values, format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

#: Histogram resolution used by the paper for the operative periods.
OPERATIVE_NUM_BINS = 50

#: Upper edge of the operative-period histogram (Figure 3 covers 0-250).
OPERATIVE_UPPER = 250.0

#: Histogram resolution used by the paper for the inoperative periods.
INOPERATIVE_NUM_BINS = 40

#: Upper edge of the inoperative-period histogram (Figure 4 covers 0-1.2).
INOPERATIVE_UPPER = 1.2


@dataclass(frozen=True)
class PeriodAnalysis:
    """Analysis of one period type (operative or inoperative).

    Attributes
    ----------
    label:
        Human-readable name of the period type.
    empirical:
        The histogram-based empirical density.
    mean, scv:
        Estimated mean and squared coefficient of variation (paper Eq. 1–2).
    exponential_fit:
        The one-moment exponential fit (the null hypothesis).
    exponential_ks:
        KS test of the exponential fit on the histogram grid.
    hyperexponential_fit:
        The 2-phase hyperexponential moment-matching fit.
    hyperexponential_ks:
        KS test of the hyperexponential fit.
    """

    label: str
    empirical: EmpiricalDensity
    mean: float
    scv: float
    exponential_fit: Exponential
    exponential_ks: KSResult
    hyperexponential_fit: HyperExponential
    hyperexponential_ks: KSResult

    def to_text(self) -> str:
        """Render the analysis as the rows the paper reports in Section 2."""
        pairs = [
            ("observations", self.empirical.sample_size),
            ("estimated mean", self.mean),
            ("estimated C^2", self.scv),
            ("exponential KS statistic D", self.exponential_ks.statistic),
            ("exponential KS 5% critical value", self.exponential_ks.critical_value(0.05)),
            ("exponential passes at 5%", self.exponential_ks.passes(0.05)),
            (
                "hyperexponential weights",
                tuple(round(float(w), 4) for w in self.hyperexponential_fit.weights),
            ),
            (
                "hyperexponential rates",
                tuple(round(float(r), 4) for r in self.hyperexponential_fit.rates),
            ),
            ("hyperexponential KS statistic D", self.hyperexponential_ks.statistic),
            (
                "hyperexponential KS 5% critical value",
                self.hyperexponential_ks.critical_value(0.05),
            ),
            ("hyperexponential passes at 5%", self.hyperexponential_ks.passes(0.05)),
            ("hyperexponential passes at 10%", self.hyperexponential_ks.passes(0.10)),
        ]
        return format_key_values(pairs, title=f"{self.label} periods")


@dataclass(frozen=True)
class Section2Result:
    """Full result of the Section-2 reproduction.

    Attributes
    ----------
    trace_rows, anomalous_fraction:
        Size and anomaly rate of the analysed trace (the paper reports
        140,000 rows with fewer than 4% anomalies).
    operative, inoperative:
        Per-period analyses (Figures 3 and 4).
    inoperative_exponential_ks:
        KS test of the single-exponential simplification of the inoperative
        periods discussed at the end of Section 2.
    """

    trace_rows: int
    anomalous_fraction: float
    operative: PeriodAnalysis
    inoperative: PeriodAnalysis
    inoperative_exponential_simplified: Exponential
    inoperative_exponential_ks: KSResult

    def to_text(self) -> str:
        """Render the whole Section-2 reproduction as a plain-text report."""
        header = format_key_values(
            [
                ("trace rows", self.trace_rows),
                ("anomalous fraction", self.anomalous_fraction),
                (
                    "simplified exponential repair mean",
                    self.inoperative_exponential_simplified.mean,
                ),
                (
                    "simplified exponential KS D",
                    self.inoperative_exponential_ks.statistic,
                ),
                (
                    "simplified exponential passes at 5%",
                    self.inoperative_exponential_ks.passes(0.05),
                ),
            ],
            title="Section 2 - trace overview",
        )
        return "\n\n".join([header, self.operative.to_text(), self.inoperative.to_text()])

    def density_table(self, which: str = "operative", max_rows: int = 10) -> str:
        """A compact table of the empirical vs fitted densities (Figures 3–4)."""
        analysis = self.operative if which == "operative" else self.inoperative
        midpoints, densities = analysis.empirical.as_series()
        fitted = analysis.hyperexponential_fit.pdf(midpoints)
        step = max(1, len(midpoints) // max_rows)
        rows = [
            (float(midpoints[i]), float(densities[i]), float(fitted[i]))
            for i in range(0, len(midpoints), step)
        ]
        return format_table(
            ("period length", "observed density", "hyperexponential fit"),
            rows,
            title=f"Figure {'3' if which == 'operative' else '4'}: {which} period densities",
            float_format="{:.5f}",
        )


def _analyse_periods(
    label: str,
    observations: "Sequence[float] | np.ndarray",
    num_bins: int,
    upper: float,
) -> PeriodAnalysis:
    # The display/KS histogram covers the range shown in the paper's figure
    # (values beyond it are clipped into the last bin), while the moments are
    # estimated from the raw observations so that the heavy tail of the
    # operative periods is not truncated — clipping the tail would bias the
    # third moment and break the hyperexponential fit.
    empirical = EmpiricalDensity.from_observations(observations, num_bins=num_bins, upper=upper)
    moments = estimate_moments(observations, 3)
    scv = float(moments[1] / moments[0] ** 2 - 1.0)
    exponential_fit = fit_exponential(moments)
    exponential_ks = ks_test_grid(empirical, exponential_fit.cdf)
    hyper_report = fit_two_phase_from_moments(moments)
    hyper_fit = hyper_report.distribution
    hyper_ks = ks_test_grid(empirical, hyper_fit.cdf)
    return PeriodAnalysis(
        label=label,
        empirical=empirical,
        mean=float(moments[0]),
        scv=scv,
        exponential_fit=exponential_fit,
        exponential_ks=exponential_ks,
        hyperexponential_fit=hyper_fit,
        hyperexponential_ks=hyper_ks,
    )


def run_section2(
    trace: BreakdownTrace | None = None,
    *,
    num_events: int | None = None,
    seed: int = 936,
) -> Section2Result:
    """Run the Section-2 reproduction.

    Parameters
    ----------
    trace:
        A breakdown trace to analyse.  When omitted a synthetic Sun-like
        trace is generated (140,000 events by default).
    num_events:
        Number of synthetic events to generate when no trace is supplied;
        useful for fast test runs.
    seed:
        Seed of the synthetic generator.
    """
    if trace is None:
        config = SyntheticTraceConfig(seed=seed) if num_events is None else SyntheticTraceConfig(
            num_events=num_events, seed=seed
        )
        trace = generate_sun_like_trace(config)

    anomalous_fraction = trace.anomalous_fraction
    cleaned = trace.cleaned()
    operative_periods = cleaned.operative_periods()
    inoperative_periods = cleaned.inoperative_periods()

    operative = _analyse_periods(
        "Operative", operative_periods, OPERATIVE_NUM_BINS, OPERATIVE_UPPER
    )
    inoperative = _analyse_periods(
        "Inoperative", inoperative_periods, INOPERATIVE_NUM_BINS, INOPERATIVE_UPPER
    )

    # The single-exponential simplification the paper discusses: an
    # exponential whose mean equals that of the dominant mixture component.
    dominant_index = int(inoperative.hyperexponential_fit.weights.argmax())
    dominant_rate = float(inoperative.hyperexponential_fit.rates[dominant_index])
    simplified = Exponential(rate=dominant_rate)
    simplified_ks = ks_test_grid(inoperative.empirical, simplified.cdf)

    return Section2Result(
        trace_rows=trace.num_events,
        anomalous_fraction=anomalous_fraction,
        operative=operative,
        inoperative=inoperative,
        inoperative_exponential_simplified=simplified,
        inoperative_exponential_ks=simplified_ks,
    )


def fitted_distributions(result: Section2Result) -> tuple[Distribution, Distribution]:
    """Convenience accessor returning the fitted (operative, inoperative) pair."""
    return result.operative.hyperexponential_fit, result.inoperative.hyperexponential_fit
