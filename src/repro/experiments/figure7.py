"""Figure-7 experiment: queue length vs mean repair time.

The distribution of the operative periods is kept fixed (mean 34.62) while
server availability is degraded by increasing the mean inoperative period
``1 / eta`` from 1 to 5.  The mean queue length is computed twice: once with
exponentially distributed operative periods and once with the fitted
hyperexponential distribution of the same mean.  The paper's point: the
exponential assumption becomes more and more over-optimistic as repairs get
slower (``N = 10``, ``lambda = 8``, ``mu = 1``).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..distributions import Exponential
from ..queueing.model import UnreliableQueueModel
from ..solvers import SolverPolicy
from ..sweeps import SweepRunner, SweepSpec
from . import parameters
from .reporting import format_table


@dataclass(frozen=True)
class Figure7Point:
    """One x-axis position of Figure 7.

    Attributes
    ----------
    mean_repair_time:
        The mean inoperative period ``1 / eta``.
    queue_length_exponential:
        ``L`` under exponentially distributed operative periods.
    queue_length_hyperexponential:
        ``L`` under the fitted hyperexponential operative periods.
    """

    mean_repair_time: float
    queue_length_exponential: float
    queue_length_hyperexponential: float

    @property
    def underestimation_factor(self) -> float:
        """How much the exponential assumption underestimates the queue."""
        if self.queue_length_exponential == 0.0:
            return float("inf")
        return self.queue_length_hyperexponential / self.queue_length_exponential


@dataclass(frozen=True)
class Figure7Result:
    """The two Figure-7 curves."""

    points: tuple[Figure7Point, ...]

    def to_text(self) -> str:
        """Render the curves as the series plotted in Figure 7."""
        rows = [
            (
                point.mean_repair_time,
                point.queue_length_exponential,
                point.queue_length_hyperexponential,
                point.underestimation_factor,
            )
            for point in self.points
        ]
        return format_table(
            ("1/eta", "L exponential", "L hyperexponential", "ratio"),
            rows,
            title="Figure 7: queue length vs average repair time",
        )


def _model_for(mean_repair_time: float, *, hyperexponential: bool) -> UnreliableQueueModel:
    operative = (
        parameters.FITTED_OPERATIVE
        if hyperexponential
        else Exponential(rate=parameters.AGGREGATE_BREAKDOWN_RATE)
    )
    return UnreliableQueueModel(
        num_servers=parameters.FIGURE7_NUM_SERVERS,
        arrival_rate=parameters.FIGURE7_ARRIVAL_RATE,
        service_rate=parameters.SERVICE_RATE,
        operative=operative,
        inoperative=Exponential(rate=1.0 / mean_repair_time),
    )


def _grid_model(base: UnreliableQueueModel, params: Mapping[str, object]) -> UnreliableQueueModel:
    """Sweep model factory: an ``(mean_repair_time, operative_kind)`` cell."""
    return _model_for(
        float(params["mean_repair_time"]),
        hyperexponential=params["operative_kind"] == "hyperexponential",
    )


def sweep_spec(mean_repair_times: tuple[float, ...]) -> SweepSpec:
    """The Figure-7 grid as a declarative sweep spec.

    The operative-period distribution is a categorical axis: the exponential
    assumption against the fitted hyperexponential of the same mean.
    """
    return SweepSpec(
        base_model=_model_for(mean_repair_times[0], hyperexponential=False),
        axes=[
            ("mean_repair_time", mean_repair_times),
            ("operative_kind", ("exponential", "hyperexponential")),
        ],
        policy=SolverPolicy(order=("spectral",)),
        model_factory=_grid_model,
        name="figure7",
    )


def run_figure7(
    *,
    mean_repair_times: tuple[float, ...] = parameters.FIGURE7_MEAN_REPAIR_TIMES,
    runner: SweepRunner | None = None,
) -> Figure7Result:
    """Evaluate the Figure-7 curves (exact spectral solution for both)."""
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(mean_repair_times))
    points: list[Figure7Point] = []
    for repair_time in mean_repair_times:
        exponential_row = results.find(
            mean_repair_time=repair_time, operative_kind="exponential"
        )
        hyper_row = results.find(
            mean_repair_time=repair_time, operative_kind="hyperexponential"
        )
        points.append(
            Figure7Point(
                mean_repair_time=repair_time,
                queue_length_exponential=exponential_row.metric("mean_queue_length"),
                queue_length_hyperexponential=hyper_row.metric("mean_queue_length"),
            )
        )
    return Figure7Result(points=tuple(points))
