"""Run every experiment of the paper and produce a single text report.

The runner reproduces, in order: the Section-2 trace analysis (Figures 3–4)
and the Section-4 numerical experiments (Figures 5–9).  It is used by the
``examples/reproduce_paper.py`` script and was used to generate
``EXPERIMENTS.md``.  Each experiment can also be run individually through its
``run_figureN`` function; the runner only orchestrates and concatenates.

Every figure evaluates its grid through one shared
:class:`~repro.sweeps.SweepRunner` — and therefore one shared
:class:`~repro.solvers.SolutionCache` — so configurations repeated across
figures are solved once, and ``parallel=True`` fans all the grids out over
worker processes (the cache deduplicates repeated points before fan-out).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from ..sweeps import SweepRunner
from .figure5 import run_figure5
from .figure6 import run_figure6
from .figure7 import run_figure7
from .figure8 import run_figure8
from .figure9 import run_figure9
from .section2 import run_section2


@dataclass(frozen=True)
class ExperimentReport:
    """The rendered report of one experiment.

    Attributes
    ----------
    name:
        Identifier of the experiment (e.g. ``"figure5"``).
    text:
        The plain-text rendering of the result.
    elapsed_seconds:
        Wall-clock time the experiment took.
    result:
        The structured result object, for programmatic use.
    """

    name: str
    text: str
    elapsed_seconds: float
    result: object


def _run_one(name: str, runner: Callable[[], object]) -> ExperimentReport:
    start = time.perf_counter()
    result = runner()
    elapsed = time.perf_counter() - start
    text = result.to_text() if hasattr(result, "to_text") else str(result)
    return ExperimentReport(name=name, text=text, elapsed_seconds=elapsed, result=result)


def run_all_experiments(
    *,
    include_section2: bool = True,
    section2_num_events: int | None = None,
    figure6_simulation_horizon: float = 200_000.0,
    quick: bool = False,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[ExperimentReport]:
    """Run every experiment and return one report per table/figure.

    Parameters
    ----------
    include_section2:
        Whether to run the (comparatively slow) trace analysis.
    section2_num_events:
        Synthetic-trace size for Section 2; ``None`` uses the full 140,000
        events of the original data set.
    figure6_simulation_horizon:
        Simulated time for the deterministic point of Figure 6.
    quick:
        When True, use reduced parameter grids so the whole suite finishes in
        a couple of minutes (used by smoke tests); the full grids reproduce
        the paper's figures point for point.
    parallel:
        Evaluate the figure grids across worker processes (same numbers,
        less wall-clock time).
    max_workers:
        Worker-process count for the parallel path (defaults to CPU count).
    """
    sweep_runner = SweepRunner(parallel=parallel, max_workers=max_workers)
    reports: list[ExperimentReport] = []
    if include_section2:
        reports.append(
            _run_one(
                "section2",
                lambda: run_section2(
                    num_events=section2_num_events if not quick else 20_000
                ),
            )
        )
    if quick:
        reports.append(
            _run_one(
                "figure5",
                lambda: run_figure5(
                    arrival_rates=(7.0,),
                    server_counts=tuple(range(10, 14)),
                    solver="geometric",
                    runner=sweep_runner,
                ),
            )
        )
        reports.append(
            _run_one(
                "figure6",
                lambda: run_figure6(
                    arrival_rates=(8.5,),
                    scv_values=(1.0, 4.0, 8.0),
                    simulation_horizon=20_000.0,
                    runner=sweep_runner,
                ),
            )
        )
        reports.append(
            _run_one(
                "figure7",
                lambda: run_figure7(mean_repair_times=(1.0, 3.0, 5.0), runner=sweep_runner),
            )
        )
        reports.append(
            _run_one("figure8", lambda: run_figure8(loads=(0.90, 0.95, 0.99), runner=sweep_runner))
        )
        reports.append(
            _run_one(
                "figure9", lambda: run_figure9(server_counts=(9, 10, 11), runner=sweep_runner)
            )
        )
        return reports

    reports.append(_run_one("figure5", lambda: run_figure5(runner=sweep_runner)))
    reports.append(
        _run_one(
            "figure6",
            lambda: run_figure6(
                simulation_horizon=figure6_simulation_horizon, runner=sweep_runner
            ),
        )
    )
    reports.append(_run_one("figure7", lambda: run_figure7(runner=sweep_runner)))
    reports.append(_run_one("figure8", lambda: run_figure8(runner=sweep_runner)))
    reports.append(_run_one("figure9", lambda: run_figure9(runner=sweep_runner)))
    return reports


def render_report(reports: list[ExperimentReport]) -> str:
    """Concatenate experiment reports into one document."""
    sections = []
    for report in reports:
        header = f"## {report.name}  (took {report.elapsed_seconds:.1f}s)"
        sections.append(header + "\n\n" + report.text)
    return "\n\n\n".join(sections)
