"""Shared parameter sets of the paper's numerical experiments.

Section 4 of the paper re-uses one base configuration throughout: the
operative periods follow the fitted Sun hyperexponential distribution, the
inoperative periods are exponential, and the mean service time is one.  The
constants below capture every published parameter so that the figure drivers,
tests and examples all refer to a single source of truth.
"""

from __future__ import annotations

from ..distributions import Exponential, HyperExponential

#: Fitted operative-period weights (paper Section 2 / Figure 5 caption).
OPERATIVE_WEIGHTS = (0.7246, 0.2754)

#: Fitted operative-period rates (paper Section 2 / Figure 5 caption).
OPERATIVE_RATES = (0.1663, 0.0091)

#: The fitted operative-period distribution used in Figures 5, 7, 8 and 9.
FITTED_OPERATIVE = HyperExponential(weights=OPERATIVE_WEIGHTS, rates=OPERATIVE_RATES)

#: Mean of the fitted operative periods, 1/xi = alpha1/xi1 + alpha2/xi2 (~34.62).
MEAN_OPERATIVE_PERIOD = float(sum(w / r for w, r in zip(OPERATIVE_WEIGHTS, OPERATIVE_RATES)))

#: Aggregate breakdown rate xi (~0.0289) quoted in the captions of Figures 6 and 7.
AGGREGATE_BREAKDOWN_RATE = 1.0 / MEAN_OPERATIVE_PERIOD

#: Fitted inoperative-period weights (paper Section 2).
INOPERATIVE_WEIGHTS = (0.9303, 0.0697)

#: Fitted inoperative-period rates (paper Section 2).
INOPERATIVE_RATES = (25.0043, 1.6346)

#: The fitted inoperative-period distribution (Figure 4).
FITTED_INOPERATIVE = HyperExponential(weights=INOPERATIVE_WEIGHTS, rates=INOPERATIVE_RATES)

#: Repair rate eta = 25 used by Figures 5, 8 and 9 (exponential repairs, mean 0.04).
FIGURE5_REPAIR_RATE = 25.0

#: The exponential repair-time distribution of Figures 5, 8 and 9.
FIGURE5_INOPERATIVE = Exponential(rate=FIGURE5_REPAIR_RATE)

#: Per-server service rate mu = 1 used by every Section-4 experiment.
SERVICE_RATE = 1.0

#: Holding (job waiting) cost coefficient c1 of Figure 5.
FIGURE5_HOLDING_COST = 4.0

#: Server provisioning cost coefficient c2 of Figure 5.
FIGURE5_SERVER_COST = 1.0

#: Arrival rates evaluated in Figure 5.
FIGURE5_ARRIVAL_RATES = (7.0, 8.0, 8.5)

#: Server counts evaluated in Figure 5 (x-axis 9..17).
FIGURE5_SERVER_COUNTS = tuple(range(9, 18))

#: Optimal server counts the paper reports for Figure 5, keyed by arrival rate.
FIGURE5_PAPER_OPTIMA = {7.0: 11, 8.0: 12, 8.5: 13}

#: Figure 6: number of servers.
FIGURE6_NUM_SERVERS = 10

#: Figure 6: repair rate eta = 0.2 (mean repair time 5).
FIGURE6_REPAIR_RATE = 0.2

#: Figure 6: arrival rates of the two curves.
FIGURE6_ARRIVAL_RATES = (8.5, 8.6)

#: Figure 6: squared coefficients of variation of the operative periods.
FIGURE6_SCV_VALUES = (0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0)

#: Figure 7: number of servers, arrival rate and mean repair times (1/eta).
FIGURE7_NUM_SERVERS = 10
FIGURE7_ARRIVAL_RATE = 8.0
FIGURE7_MEAN_REPAIR_TIMES = (1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)

#: Figure 8: number of servers and the effective loads evaluated (x-axis 0.89-0.99).
FIGURE8_NUM_SERVERS = 10
FIGURE8_LOADS = (0.89, 0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97, 0.98, 0.99)

#: Figure 9: arrival rate, server counts and the response-time target discussed in the text.
FIGURE9_ARRIVAL_RATE = 7.5
FIGURE9_SERVER_COUNTS = tuple(range(8, 14))
FIGURE9_RESPONSE_TIME_TARGET = 1.5
FIGURE9_PAPER_MINIMUM_SERVERS = 9
