"""Figure-8 experiment: accuracy of the geometric approximation under load.

With ``N = 10`` servers, the fitted operative-period distribution and
exponential repairs (``eta = 25``), the mean queue length is computed by the
exact spectral expansion and by the geometric approximation for effective
loads between 0.89 and 0.99.  The paper's message — reproduced here — is that
the approximation error shrinks as the load grows (the approximation is
asymptotically exact in heavy traffic).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..queueing.model import UnreliableQueueModel
from ..sweeps import SweepRunner, SweepSpec
from . import parameters
from .reporting import format_table


@dataclass(frozen=True)
class Figure8Point:
    """Exact and approximate queue lengths at one load level.

    Attributes
    ----------
    load:
        The effective load ``lambda / (mu N eta / (xi + eta))``.
    arrival_rate:
        The arrival rate that realises this load.
    exact_queue_length, approximate_queue_length:
        The exact (spectral) and approximate (geometric) mean queue lengths.
    """

    load: float
    arrival_rate: float
    exact_queue_length: float
    approximate_queue_length: float

    @property
    def relative_error(self) -> float:
        """The relative error of the approximation at this load."""
        if self.exact_queue_length == 0.0:
            return float("inf")
        return abs(self.approximate_queue_length - self.exact_queue_length) / self.exact_queue_length


@dataclass(frozen=True)
class Figure8Result:
    """The exact-vs-approximate comparison across loads."""

    points: tuple[Figure8Point, ...]

    def to_text(self) -> str:
        """Render the curves as the series plotted in Figure 8."""
        rows = [
            (
                point.load,
                point.arrival_rate,
                point.exact_queue_length,
                point.approximate_queue_length,
                point.relative_error,
            )
            for point in self.points
        ]
        return format_table(
            ("load", "lambda", "L exact", "L approximation", "relative error"),
            rows,
            title="Figure 8: exact vs approximate queue length under increasing load",
        )

    def errors_are_decreasing_overall(self) -> bool:
        """Whether the relative error at the heaviest load is the smallest.

        This is the qualitative claim of the figure (the error need not be
        monotone point by point, but heavy load must beat light load).
        """
        errors = [point.relative_error for point in self.points]
        return errors[-1] <= errors[0]


def model_for_load(load: float, num_servers: int = parameters.FIGURE8_NUM_SERVERS) -> UnreliableQueueModel:
    """The Figure-8 model whose effective load equals ``load``."""
    template = UnreliableQueueModel(
        num_servers=num_servers,
        arrival_rate=1.0,
        service_rate=parameters.SERVICE_RATE,
        operative=parameters.FITTED_OPERATIVE,
        inoperative=parameters.FIGURE5_INOPERATIVE,
    )
    arrival_rate = load * template.mean_operative_servers * parameters.SERVICE_RATE
    return template.with_arrival_rate(arrival_rate)


def _grid_model(base: UnreliableQueueModel, params: Mapping[str, object]) -> UnreliableQueueModel:
    """Sweep model factory: the model whose effective load equals the cell's."""
    return model_for_load(float(params["load"]))


def sweep_spec(loads: tuple[float, ...]) -> SweepSpec:
    """The Figure-8 grid: each load solved exactly and approximately.

    The reserved ``solver`` axis evaluates the same model with both methods;
    the shared grid cell model is built once per load by the factory.
    """
    return SweepSpec(
        base_model=model_for_load(loads[0]),
        axes=[("load", loads), ("solver", ("spectral", "geometric"))],
        model_factory=_grid_model,
        name="figure8",
    )


def run_figure8(
    *,
    loads: tuple[float, ...] = parameters.FIGURE8_LOADS,
    runner: SweepRunner | None = None,
) -> Figure8Result:
    """Evaluate the Figure-8 comparison through the sweep engine."""
    runner = runner if runner is not None else SweepRunner()
    results = runner.run(sweep_spec(loads))
    points: list[Figure8Point] = []
    for load in loads:
        exact_row = results.find(load=load, solver="spectral")
        approximate_row = results.find(load=load, solver="geometric")
        points.append(
            Figure8Point(
                load=load,
                arrival_rate=model_for_load(load).arrival_rate,
                exact_queue_length=exact_row.metric("mean_queue_length"),
                approximate_queue_length=approximate_row.metric("mean_queue_length"),
            )
        )
    return Figure8Result(points=tuple(points))
