"""Internal validation helpers shared across the library.

These helpers normalise user-supplied parameters into plain Python / NumPy
values and raise :class:`repro.exceptions.ParameterError` with a descriptive
message when a value is out of range.  They are internal: the public API is
the set of model and distribution classes that use them.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .exceptions import ParameterError

#: Tolerance used when checking that probability vectors sum to one.
PROBABILITY_SUM_TOLERANCE = 1e-9


def check_positive(value: float, name: str) -> float:
    """Return ``value`` as a float, requiring it to be strictly positive."""
    value = _check_finite_number(value, name)
    if value <= 0.0:
        raise ParameterError(f"{name} must be strictly positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` as a float, requiring it to be >= 0."""
    value = _check_finite_number(value, name)
    if value < 0.0:
        raise ParameterError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` as a float, requiring it to lie in [0, 1]."""
    value = _check_finite_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Return ``value`` as an int, requiring it to be a positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ParameterError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` as an int, requiring it to be a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ParameterError(f"{name} must be a non-negative integer, got {value!r}")
    return int(value)


def check_positive_vector(values: Sequence[float], name: str) -> np.ndarray:
    """Return ``values`` as a 1-D float array of strictly positive entries."""
    array = _as_1d_float_array(values, name)
    if array.size == 0:
        raise ParameterError(f"{name} must not be empty")
    if np.any(array <= 0.0):
        raise ParameterError(f"all entries of {name} must be strictly positive, got {array!r}")
    return array


def check_probability_vector(values: Sequence[float], name: str) -> np.ndarray:
    """Return ``values`` as a 1-D probability vector (entries >= 0, sum == 1)."""
    array = _as_1d_float_array(values, name)
    if array.size == 0:
        raise ParameterError(f"{name} must not be empty")
    if np.any(array < 0.0):
        raise ParameterError(f"all entries of {name} must be non-negative, got {array!r}")
    total = float(array.sum())
    if abs(total - 1.0) > PROBABILITY_SUM_TOLERANCE:
        raise ParameterError(
            f"entries of {name} must sum to 1 (got sum {total!r}); "
            "normalise the weights before constructing the distribution"
        )
    return array


def check_same_length(first: np.ndarray, second: np.ndarray, names: str) -> None:
    """Raise unless the two arrays have the same length."""
    if len(first) != len(second):
        raise ParameterError(
            f"{names} must have the same length, got {len(first)} and {len(second)}"
        )


def _check_finite_number(value: float, name: str) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a real number, got {value!r}") from exc
    if not np.isfinite(value):
        raise ParameterError(f"{name} must be finite, got {value!r}")
    return value


def _as_1d_float_array(values: Sequence[float], name: str) -> np.ndarray:
    try:
        array = np.asarray(values, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a sequence of real numbers") from exc
    if array.ndim != 1:
        raise ParameterError(f"{name} must be one-dimensional, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ParameterError(f"all entries of {name} must be finite")
    return array
