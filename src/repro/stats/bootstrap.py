"""Bootstrap confidence intervals for empirical statistics.

The paper reports point estimates only (moments, coefficients of variation,
KS statistics).  A production-quality reproduction should also report how
certain those estimates are, so this module provides a small nonparametric
bootstrap utility used by the Section-2 experiment harness and the examples.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_probability
from ..exceptions import DataError


@dataclass(frozen=True)
class BootstrapResult:
    """A bootstrap estimate of a scalar statistic.

    Attributes
    ----------
    point_estimate:
        The statistic evaluated on the original sample.
    lower, upper:
        The percentile bootstrap confidence bounds.
    confidence:
        The confidence level of the interval (e.g. 0.95).
    replicates:
        The bootstrap replicate values (useful for diagnostics).
    """

    point_estimate: float
    lower: float
    upper: float
    confidence: float
    replicates: np.ndarray

    @property
    def half_width(self) -> float:
        """Half the width of the confidence interval."""
        return 0.5 * (self.upper - self.lower)

    def contains(self, value: float) -> bool:
        """Return True when ``value`` lies inside the confidence interval."""
        return self.lower <= value <= self.upper


def bootstrap_statistic(
    observations: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    *,
    num_resamples: int = 200,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Percentile bootstrap for an arbitrary scalar statistic.

    Parameters
    ----------
    observations:
        The raw sample.
    statistic:
        Callable mapping a 1-D array to a scalar (e.g. ``np.mean`` or a
        squared-coefficient-of-variation estimator).
    num_resamples:
        Number of bootstrap resamples.
    confidence:
        Confidence level of the percentile interval.
    rng:
        Optional NumPy generator; a fixed default seed is used when omitted so
        results are reproducible.
    """
    num_resamples = check_positive_int(num_resamples, "num_resamples")
    confidence = check_probability(confidence, "confidence")
    if not 0.0 < confidence < 1.0:
        raise DataError("confidence must lie strictly between 0 and 1")
    data = np.asarray(observations, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise DataError("observations must be a non-empty one-dimensional sequence")
    generator = rng if rng is not None else np.random.default_rng(20060501)
    point = float(statistic(data))
    replicates = np.empty(num_resamples)
    n = data.size
    for index in range(num_resamples):
        resample = data[generator.integers(0, n, size=n)]
        replicates[index] = float(statistic(resample))
    alpha = 1.0 - confidence
    lower, upper = np.quantile(replicates, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapResult(
        point_estimate=point,
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        replicates=replicates,
    )


def bootstrap_mean(
    observations: Sequence[float],
    *,
    num_resamples: int = 200,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Bootstrap confidence interval for the sample mean."""
    return bootstrap_statistic(
        observations,
        lambda sample: float(np.mean(sample)),
        num_resamples=num_resamples,
        confidence=confidence,
        rng=rng,
    )


def bootstrap_scv(
    observations: Sequence[float],
    *,
    num_resamples: int = 200,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """Bootstrap confidence interval for the squared coefficient of variation."""

    def scv(sample: np.ndarray) -> float:
        mean = float(np.mean(sample))
        second = float(np.mean(sample**2))
        if mean == 0.0:
            return float("nan")
        return second / (mean * mean) - 1.0

    return bootstrap_statistic(
        observations,
        scv,
        num_resamples=num_resamples,
        confidence=confidence,
        rng=rng,
    )
