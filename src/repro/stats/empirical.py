"""Empirical densities, cumulative distributions and moment estimates.

Section 2 of the paper builds histograms ("empirical probability density
functions") of the operative and inoperative periods, estimates moments from
them (Eq. 1–2) and derives empirical cumulative distribution functions
(Eq. 3) that feed the Kolmogorov–Smirnov test.  This module implements that
pipeline exactly as described:

* observations are grouped into intervals of equal length;
* the interval mid-points ``x_i`` carry probability ``p_i = f_i / n``;
* the empirical density is ``d_i = p_i / delta_i`` where ``delta_i`` is the
  interval width;
* the ``k``-th estimated moment is ``M~_k = sum_i x_i^k p_i``;
* the empirical CDF at ``x_i`` is ``F~(x_i) = sum_{j<=i} p_j``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive_int
from ..exceptions import DataError


@dataclass(frozen=True)
class EmpiricalDensity:
    """A histogram-based empirical density in the paper's Section-2 form.

    Attributes
    ----------
    midpoints:
        The interval mid-points ``x_i``.
    probabilities:
        The probabilities ``p_i = f_i / n`` attached to each mid-point.
    densities:
        The empirical density values ``d_i = p_i / delta_i``.
    bin_edges:
        The ``len(midpoints) + 1`` edges of the grouping intervals.
    sample_size:
        The number ``n`` of observations used.
    """

    midpoints: np.ndarray
    probabilities: np.ndarray
    densities: np.ndarray
    bin_edges: np.ndarray
    sample_size: int
    _cdf: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_cdf", np.cumsum(self.probabilities))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_observations(
        cls,
        observations: Sequence[float],
        num_bins: int = 50,
        *,
        upper: float | None = None,
    ) -> "EmpiricalDensity":
        """Group observations into ``num_bins`` equal-length intervals.

        Parameters
        ----------
        observations:
            Non-negative observed period lengths.
        num_bins:
            Number of equal-length grouping intervals (the paper uses 50 for
            operative and 40 for inoperative periods).
        upper:
            Optional upper edge of the last interval.  When omitted the
            maximum observation is used.  Observations above ``upper`` are
            clipped into the last interval so that probabilities still sum
            to one.
        """
        num_bins = check_positive_int(num_bins, "num_bins")
        data = np.asarray(observations, dtype=float)
        if data.ndim != 1 or data.size == 0:
            raise DataError("observations must be a non-empty one-dimensional sequence")
        if np.any(~np.isfinite(data)):
            raise DataError("observations must be finite")
        if np.any(data < 0.0):
            raise DataError("observations must be non-negative period lengths")
        top = float(np.max(data)) if upper is None else float(upper)
        if top <= 0.0:
            raise DataError("the histogram range must have positive length")
        edges = np.linspace(0.0, top, num_bins + 1)
        clipped = np.minimum(data, np.nextafter(top, 0.0))
        counts, _ = np.histogram(clipped, bins=edges)
        n = data.size
        probabilities = counts / n
        widths = np.diff(edges)
        densities = probabilities / widths
        midpoints = 0.5 * (edges[:-1] + edges[1:])
        return cls(
            midpoints=midpoints,
            probabilities=probabilities,
            densities=densities,
            bin_edges=edges,
            sample_size=int(n),
        )

    # ------------------------------------------------------------------ #
    # Paper equations 1-3
    # ------------------------------------------------------------------ #

    def moment(self, k: int) -> float:
        """The ``k``-th estimated raw moment ``M~_k = sum_i x_i^k p_i`` (Eq. 1)."""
        k = check_positive_int(k, "k")
        return float(np.sum(self.midpoints**k * self.probabilities))

    def moments(self, count: int) -> np.ndarray:
        """Return the first ``count`` estimated raw moments."""
        count = check_positive_int(count, "count")
        return np.array([self.moment(k) for k in range(1, count + 1)])

    @property
    def mean(self) -> float:
        """The estimated mean ``M~_1``."""
        return self.moment(1)

    @property
    def variance(self) -> float:
        """The estimated variance ``V~ = M~_2 - M~_1^2`` (Eq. 2)."""
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    @property
    def scv(self) -> float:
        """The estimated squared coefficient of variation ``C~^2`` (Eq. 2)."""
        m1 = self.moment(1)
        if m1 == 0.0:
            raise DataError("squared coefficient of variation undefined: zero empirical mean")
        return self.moment(2) / (m1 * m1) - 1.0

    def cdf(self) -> np.ndarray:
        """The empirical CDF values ``F~(x_i)`` at the mid-points (Eq. 3)."""
        return self._cdf.copy()

    def cdf_at(self, x: float) -> float:
        """Evaluate the empirical CDF at an arbitrary point by step interpolation."""
        index = np.searchsorted(self.midpoints, x, side="right") - 1
        if index < 0:
            return 0.0
        return float(self._cdf[min(index, self._cdf.size - 1)])

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def as_series(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(midpoints, densities)`` — the series plotted in Figures 3–4."""
        return self.midpoints.copy(), self.densities.copy()

    def __len__(self) -> int:
        return int(self.midpoints.size)


def estimate_moments(observations: Sequence[float], count: int) -> np.ndarray:
    """Estimate the first ``count`` raw moments directly from raw observations.

    This is the usual sample-moment estimator ``mean(x^k)``; it differs from
    the histogram-based estimator of Eq. 1 only through the grouping error,
    and the test-suite checks that the two agree closely.
    """
    count = check_positive_int(count, "count")
    data = np.asarray(observations, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise DataError("observations must be a non-empty one-dimensional sequence")
    return np.array([float(np.mean(data**k)) for k in range(1, count + 1)])


def sample_scv(observations: Sequence[float]) -> float:
    """Return the sample squared coefficient of variation of raw observations."""
    moments = estimate_moments(observations, 2)
    if moments[0] == 0.0:
        raise DataError("squared coefficient of variation undefined: zero sample mean")
    return float(moments[1] / moments[0] ** 2 - 1.0)
