"""The Kolmogorov–Smirnov goodness-of-fit test as used in the paper.

The paper (Section 2, Eq. 4) tests the null hypothesis that an empirical
cumulative distribution function ``F~`` is consistent with a hypothetical one
``F`` by computing

.. math::

    D = \\max_{x_i} | F(x_i) - F~(x_i) |

over the histogram grid points ``x_i`` and comparing ``D`` against a critical
value that depends on the number of grid points and the significance level.
The paper quotes the classical Massey (1951) large-sample critical values
``c(alpha) / sqrt(m)`` with ``m`` grid points:  for example, with 50 points
the 5% critical value is 0.19 and the 1% value is 0.23, matching the numbers
quoted in the text.

The module provides both the grid-based statistic of the paper and the exact
one-sample statistic computed from raw observations, together with critical
values and asymptotic p-values.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError, ParameterError
from .empirical import EmpiricalDensity

#: Large-sample Massey (1951) coefficients: critical value = coefficient / sqrt(m).
MASSEY_COEFFICIENTS = {
    0.20: 1.07,
    0.15: 1.14,
    0.10: 1.22,
    0.05: 1.36,
    0.01: 1.63,
}


@dataclass(frozen=True)
class KSResult:
    """The outcome of a Kolmogorov–Smirnov goodness-of-fit test.

    Attributes
    ----------
    statistic:
        The computed statistic ``D``.
    num_points:
        The number of comparison points used (histogram grid points for the
        paper-style test, or the sample size for the raw-sample test).
    critical_values:
        Mapping from significance level to the corresponding critical value.
    p_value:
        The asymptotic p-value from the Kolmogorov distribution (based on
        ``num_points``); provided for convenience, the paper's accept/reject
        decisions use the critical values.
    """

    statistic: float
    num_points: int
    critical_values: dict[float, float]
    p_value: float

    def passes(self, significance: float = 0.05) -> bool:
        """Return True when the null hypothesis is *accepted* at ``significance``.

        The hypothesis is accepted when ``D`` is smaller than the critical
        value for that significance level (paper Section 2).
        """
        critical = self.critical_value(significance)
        return self.statistic < critical

    def critical_value(self, significance: float = 0.05) -> float:
        """Return the critical value of ``D`` at the given significance level."""
        if significance in self.critical_values:
            return self.critical_values[significance]
        return ks_critical_value(self.num_points, significance)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        decisions = ", ".join(
            f"{int(level * 100)}%: {'pass' if self.passes(level) else 'fail'}"
            for level in sorted(self.critical_values)
        )
        return f"KSResult(D={self.statistic:.4f}, points={self.num_points}, {decisions})"


def ks_critical_value(num_points: int, significance: float = 0.05) -> float:
    """Return the large-sample KS critical value for ``num_points`` comparison points.

    Uses Massey's asymptotic formula ``c(alpha) / sqrt(m)``, which is the form
    the paper relies on (e.g. 1.36 / sqrt(50) = 0.192 ~ 0.19 at 5%).
    Intermediate significance levels are handled through the Kolmogorov
    distribution: ``c(alpha) = sqrt(-ln(alpha / 2) / 2)``.
    """
    if num_points < 1:
        raise ParameterError(f"num_points must be >= 1, got {num_points}")
    if not 0.0 < significance < 1.0:
        raise ParameterError(f"significance must lie in (0, 1), got {significance}")
    if significance in MASSEY_COEFFICIENTS:
        coefficient = MASSEY_COEFFICIENTS[significance]
    else:
        coefficient = math.sqrt(-0.5 * math.log(significance / 2.0))
    return coefficient / math.sqrt(num_points)


def kolmogorov_p_value(statistic: float, num_points: int) -> float:
    """Asymptotic p-value of the KS statistic via the Kolmogorov distribution."""
    if num_points < 1:
        raise ParameterError(f"num_points must be >= 1, got {num_points}")
    if statistic <= 0.0:
        return 1.0
    argument = statistic * (math.sqrt(num_points) + 0.12 + 0.11 / math.sqrt(num_points))
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * argument * argument)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(total, 0.0), 1.0))


def ks_test_grid(
    empirical: EmpiricalDensity,
    hypothesised_cdf: Callable[[np.ndarray], np.ndarray],
    *,
    significance_levels: Sequence[float] = (0.01, 0.05, 0.10),
) -> KSResult:
    """Paper-style KS test on the histogram grid (Eq. 4).

    Parameters
    ----------
    empirical:
        The histogram-based empirical density whose mid-points form the grid
        ``x_i`` and whose cumulative sums form ``F~(x_i)``.
    hypothesised_cdf:
        A vectorised callable returning the hypothetical CDF ``F(x_i)``;
        typically ``distribution.cdf`` for a fitted distribution.
    significance_levels:
        Levels at which to report critical values.
    """
    grid = empirical.midpoints
    empirical_cdf = empirical.cdf()
    hypothetical = np.asarray(hypothesised_cdf(grid), dtype=float)
    if hypothetical.shape != grid.shape:
        raise DataError("hypothesised_cdf must return one value per grid point")
    statistic = float(np.max(np.abs(hypothetical - empirical_cdf)))
    num_points = int(grid.size)
    critical_values = {
        level: ks_critical_value(num_points, level) for level in significance_levels
    }
    return KSResult(
        statistic=statistic,
        num_points=num_points,
        critical_values=critical_values,
        p_value=kolmogorov_p_value(statistic, num_points),
    )


def ks_test_samples(
    observations: Sequence[float],
    hypothesised_cdf: Callable[[np.ndarray], np.ndarray],
    *,
    significance_levels: Sequence[float] = (0.01, 0.05, 0.10),
) -> KSResult:
    """Exact one-sample KS test on raw observations.

    This is the textbook statistic ``sup_x |F_n(x) - F(x)|`` computed at the
    order statistics; it complements the grid-based variant and is used by the
    test-suite to validate the synthetic-data pipeline independently of the
    histogram resolution.
    """
    data = np.sort(np.asarray(observations, dtype=float))
    if data.ndim != 1 or data.size == 0:
        raise DataError("observations must be a non-empty one-dimensional sequence")
    n = data.size
    hypothetical = np.asarray(hypothesised_cdf(data), dtype=float)
    upper_steps = np.arange(1, n + 1) / n
    lower_steps = np.arange(0, n) / n
    statistic = float(
        max(np.max(upper_steps - hypothetical), np.max(hypothetical - lower_steps))
    )
    critical_values = {level: ks_critical_value(n, level) for level in significance_levels}
    return KSResult(
        statistic=statistic,
        num_points=int(n),
        critical_values=critical_values,
        p_value=kolmogorov_p_value(statistic, n),
    )
