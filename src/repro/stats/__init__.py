"""Empirical statistics used in the Section-2 analysis of the paper.

Public API
----------

* :class:`EmpiricalDensity` — histogram-based empirical densities, moments
  and CDFs (paper Eq. 1–3).
* :func:`estimate_moments`, :func:`sample_scv` — raw-sample moment estimators.
* :func:`ks_test_grid`, :func:`ks_test_samples`, :class:`KSResult`,
  :func:`ks_critical_value` — the Kolmogorov–Smirnov goodness-of-fit test
  (paper Eq. 4) with Massey critical values.
* :func:`bootstrap_statistic`, :func:`bootstrap_mean`, :func:`bootstrap_scv`,
  :class:`BootstrapResult` — nonparametric uncertainty quantification.
"""

from .bootstrap import BootstrapResult, bootstrap_mean, bootstrap_scv, bootstrap_statistic
from .empirical import EmpiricalDensity, estimate_moments, sample_scv
from .ks_test import (
    MASSEY_COEFFICIENTS,
    KSResult,
    kolmogorov_p_value,
    ks_critical_value,
    ks_test_grid,
    ks_test_samples,
)

__all__ = [
    "EmpiricalDensity",
    "estimate_moments",
    "sample_scv",
    "KSResult",
    "ks_test_grid",
    "ks_test_samples",
    "ks_critical_value",
    "kolmogorov_p_value",
    "MASSEY_COEFFICIENTS",
    "BootstrapResult",
    "bootstrap_statistic",
    "bootstrap_mean",
    "bootstrap_scv",
]
