"""Structured errors of the solver service.

Every failure the service can report to a client — malformed payloads,
unknown solvers, unstable models, backpressure rejections, expired
deadlines — is a :class:`ServiceError` subclass carrying a stable
machine-readable ``code`` and the HTTP status it maps to.  The HTTP layer
turns any raised :class:`ServiceError` into a JSON body of the form::

    {"status": "error", "error": {"code": "...", "message": "..."}}

so clients switch on ``error.code`` (part of the protocol, never reworded)
rather than parsing messages.  :class:`QueueFullError` additionally carries a
``retry_after`` hint, surfaced both in the payload and as a ``Retry-After``
header.
"""

from __future__ import annotations

from ..exceptions import ReproError


class ServiceError(ReproError):
    """Base class of every client-reportable service failure.

    Subclasses pin ``code`` (the machine-readable identifier clients switch
    on) and ``http_status`` (the response status the HTTP layer uses).
    """

    code: str = "internal-error"
    http_status: int = 500

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    def payload(self) -> dict[str, object]:
        """The ``error`` object embedded in the JSON error response."""
        error: dict[str, object] = {"code": self.code, "message": str(self)}
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return error


class BadJSONError(ServiceError):
    """The request body was not valid JSON (or not a JSON object)."""

    code = "bad-json"
    http_status = 400


class BadRequestError(ServiceError):
    """The request JSON violated the schema (missing/ill-typed fields)."""

    code = "bad-request"
    http_status = 400


class UnknownSolverError(ServiceError):
    """The request named a solver absent from the registry."""

    code = "unknown-solver"
    http_status = 400


class UnknownPresetError(ServiceError):
    """The request named a scenario preset absent from the gallery."""

    code = "unknown-preset"
    http_status = 400


class UnstableModelError(ServiceError):
    """The requested model violates the stability condition (paper Eq. 11).

    The in-process facade reports unstable models as infinite metrics, but
    infinities do not survive strict JSON, so the service rejects them at
    admission with a structured error instead.
    """

    code = "unstable-model"
    http_status = 422


class PayloadTooLargeError(ServiceError):
    """The request body exceeded the configured size bound."""

    code = "payload-too-large"
    http_status = 413


class QueueFullError(ServiceError):
    """Admission control rejected the request: the work queue is at capacity.

    Clients should back off for ``retry_after`` seconds (also sent as the
    ``Retry-After`` header) and retry; coalescable duplicates of in-flight
    work are never rejected, so a retry of a popular query is cheap.
    """

    code = "queue-full"
    http_status = 429


class LoadShedError(ServiceError):
    """Tiered admission control shed the request before it reached a shard.

    Under sustained overload the front process sheds the cheapest-to-recompute
    query kinds first (steady-state before scenario before transient), so
    expensive work that is costly to redo keeps its queue slot the longest.
    The payload carries the target ``shard`` and the ``shed_tier`` (the query
    kind that was shed) so clients and dashboards can attribute rejections.
    """

    code = "load-shed"
    http_status = 429

    def __init__(
        self,
        message: str,
        *,
        shard: int,
        tier: str,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message, retry_after=retry_after)
        self.shard = shard
        self.tier = tier

    def payload(self) -> dict[str, object]:
        error = super().payload()
        error["shard"] = self.shard
        error["shed_tier"] = self.tier
        return error


class WorkerCrashedError(ServiceError):
    """The worker process owning the request's shard died mid-request.

    The pool restarts the worker (same shard, same ring position) in the
    background; the request itself is lost, so the error is marked
    ``retryable`` — an immediate retry lands on the replacement worker.
    """

    code = "worker-crashed"
    http_status = 503

    def __init__(
        self,
        message: str,
        *,
        shard: int,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message, retry_after=retry_after)
        self.shard = shard

    def payload(self) -> dict[str, object]:
        error = super().payload()
        error["shard"] = self.shard
        error["retryable"] = True
        return error


class DeadlineExceededError(ServiceError):
    """The per-request deadline expired before the solution was ready.

    The underlying computation is *not* cancelled — other coalesced waiters
    may still need it, and once finished it populates the cache, so an
    immediate retry usually succeeds instantly.
    """

    code = "deadline-exceeded"
    http_status = 504


class SolveFailedError(ServiceError):
    """Every solver in the requested fallback chain failed."""

    code = "solve-failed"
    http_status = 500


class ServiceClosedError(ServiceError):
    """The service is shutting down and no longer accepts work."""

    code = "shutting-down"
    http_status = 503


class NotFoundError(ServiceError):
    """No such endpoint."""

    code = "not-found"
    http_status = 404


class MethodNotAllowedError(ServiceError):
    """The endpoint exists but not for this HTTP method."""

    code = "method-not-allowed"
    http_status = 405
