"""The batching scheduler: single-flight coalescing, batch windows, backpressure.

This is the heart of :mod:`repro.service`.  Every admitted query becomes a
``(model, policy)`` pair keyed exactly like the :class:`SolutionCache`, and
three mechanisms turn a storm of concurrent requests into the minimum amount
of solver work:

Single-flight coalescing
    Requests whose cache key matches work already queued *or executing*
    attach to the in-flight future instead of scheduling anything: one
    hundred concurrent identical queries cost exactly one solve.  The
    ``coalesced_total`` counter (surfaced by ``/stats``) pins this.

Batch windows
    The first distinct request arms a timer; every further distinct request
    arriving within ``batch_window`` seconds joins the same batch, which is
    dispatched as **one** :func:`repro.solvers.solve_many_async` call — so
    the facade's key-level deduplication, the shared cache and (when
    ``workers > 1``) the :class:`~concurrent.futures.ProcessPoolExecutor`
    fan-out all do their usual work.  A longer window trades first-request
    latency for bigger batches.

Admission control
    The number of *distinct* pending computations is bounded by
    ``max_queue``; beyond it, new work is rejected with
    :class:`~.errors.QueueFullError` carrying a ``retry_after`` hint.
    Coalescing joins are never rejected — they add no work.  Each request
    may also carry a ``deadline`` (seconds): when it expires before the
    result is ready the waiter gets :class:`~.errors.DeadlineExceededError`
    while the computation itself continues for the benefit of coalesced
    waiters and the cache.

The scheduler is a pure-asyncio object (no threads of its own); the blocking
solver work runs off-loop via :func:`~repro.solvers.solve_many_async`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from ..obs import MetricsRegistry, TraceBuilder, new_span_id
from ..obs.metrics import numerics_registry
from ..obs.profiling import AttemptRecord
from ..obs.slo import SloTracker
from ..solvers import SolutionCache, SolveOutcome, SolverPolicy, solve_many_async
from ..solvers.cache import CacheKey
from .errors import (
    DeadlineExceededError,
    LoadShedError,
    QueueFullError,
    ServiceClosedError,
)

#: Default seconds the scheduler waits for further requests before flushing.
DEFAULT_BATCH_WINDOW = 0.005

#: Default bound on distinct pending computations (queued + executing).
DEFAULT_MAX_QUEUE = 256

#: Default upper bound on the size of one dispatched batch.
DEFAULT_MAX_BATCH = 64

#: Default eviction bound of a scheduler-owned solution cache.
DEFAULT_CACHE_MAXSIZE = 4096

#: Query kinds cheapest-to-recompute first: the order tiers shed under load.
SHED_TIER_ORDER = ("steady-state", "scenario", "transient")

#: Default load fractions of capacity at which each query tier sheds,
#: cheapest-to-recompute first (steady-state, scenario, transient).
DEFAULT_SHED_THRESHOLDS = (0.7, 0.85, 1.0)


def shed_decision(
    query: str,
    pending_total: int,
    capacity: int,
    thresholds: tuple[float, ...] = DEFAULT_SHED_THRESHOLDS,
    *,
    latency_pressure: float = 0.0,
) -> str | None:
    """The pure tiered-admission rule: the tier to shed, or ``None`` to admit.

    ``thresholds[i]`` is the load fraction at which tier ``i`` of
    :data:`SHED_TIER_ORDER` starts shedding; cheaper-to-recompute kinds have
    lower thresholds, so under rising load steady-state queries are turned
    away first while transient grids keep their queue slots until the pool is
    genuinely full.  Unknown query kinds are treated as the most expensive
    tier.

    The load fraction is the *worse* of two signals: queue occupancy
    (``pending_total / capacity``) and ``latency_pressure``, the SLO
    tracker's ``rolling p99 / target`` ratio
    (:meth:`repro.obs.slo.SloTracker.pressure`).  A slow backend therefore
    trips the same tiered response as a full queue — shedding engages on
    *measured latency*, even while depth sits below its thresholds.  Kept
    free of any service state so the policy is unit testable against exact
    load fractions.
    """
    if capacity < 1:
        return query
    try:
        tier = SHED_TIER_ORDER.index(query)
    except ValueError:
        tier = len(SHED_TIER_ORDER) - 1
    threshold = thresholds[min(tier, len(thresholds) - 1)]
    load = max(pending_total / capacity, latency_pressure)
    if load >= threshold:
        return query
    return None


@dataclass(frozen=True)
class ScheduledResult:
    """One answered query: the outcome plus how the scheduler produced it."""

    outcome: SolveOutcome
    #: The answer came straight from the solution cache (no scheduling).
    cached: bool = False
    #: The request attached to an identical in-flight computation.
    coalesced: bool = False


@dataclass
class _Pending:
    """One distinct computation waiting for (or undergoing) evaluation.

    The ``*_at`` stamps (``time.perf_counter`` instants) trace the pending's
    life: created at admission, dispatched when its batch flushes, executed
    when the batch starts solving, completed when its outcome lands.  The
    ``solve_span_id`` is shared by *every* waiter coalesced onto this
    computation — identical concurrent requests all reference the same solve
    span, which is how a trace proves single-flight coalescing worked.
    """

    key: CacheKey
    model: object
    policy: SolverPolicy
    future: asyncio.Future = field(repr=False)
    created_at: float = field(default_factory=time.perf_counter)
    dispatched_at: float | None = None
    executed_at: float | None = None
    completed_at: float | None = None
    solve_span_id: str = field(default_factory=new_span_id)
    batch_size: int = 0
    attempts: list[AttemptRecord] = field(default_factory=list)


class BatchScheduler:
    """Coalesce, batch and admission-control solve requests onto the facade.

    Parameters
    ----------
    batch_window:
        Seconds to hold the first request of a batch open for company.
        ``0.0`` flushes on the next event-loop tick (batching then only
        captures requests arriving in the same tick).
    max_queue:
        Bound on distinct pending computations; the admission controller
        rejects beyond it.
    max_batch:
        Largest batch handed to one ``solve_many`` call; a full buffer
        flushes immediately instead of waiting out the window.
    workers:
        ``1`` evaluates batches serially on the executor thread; ``> 1``
        lets ``solve_many`` fan each batch out over a process pool.
    cache:
        The :class:`SolutionCache` answers repeat queries instantly and
        provides the coalescing key; defaults to a scheduler-owned bounded
        cache so services never share state accidentally.
    metrics:
        The :class:`~repro.obs.MetricsRegistry` latency histograms record
        into; defaults to a scheduler-owned registry.  Shard workers ship
        its :meth:`metrics_snapshot` over the stats pipe for exact merging
        in the front process.
    shard:
        The shard index stamped onto every metric series as the ``shard``
        label (``0`` for the single-process service).
    slo:
        An optional :class:`~repro.obs.slo.SloTracker`.  When set, the
        scheduler feeds it every request's queue wait and end-to-end latency
        and consults its pressure at admission: a rolling p99 beyond a shed
        tier's threshold fraction of its target rejects that tier with
        :class:`~.errors.LoadShedError` even while queue depth is below
        ``max_queue``.
    shed_thresholds:
        The per-tier load fractions the latency-pressure consult uses
        (mirrors the sharded front's depth thresholds).
    """

    def __init__(
        self,
        *,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        workers: int = 1,
        cache: SolutionCache | None = None,
        metrics: MetricsRegistry | None = None,
        shard: int = 0,
        slo: SloTracker | None = None,
        shed_thresholds: tuple[float, ...] = DEFAULT_SHED_THRESHOLDS,
    ) -> None:
        if batch_window < 0.0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.batch_window = float(batch_window)
        self.max_queue = int(max_queue)
        self.max_batch = int(max_batch)
        self.workers = int(workers)
        self.cache = cache if cache is not None else SolutionCache(maxsize=DEFAULT_CACHE_MAXSIZE)
        self.shard = int(shard)
        self.shed_thresholds = tuple(shed_thresholds)
        self._slo = slo
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        shard_labels = {"shard": str(self.shard)}
        self._solve_latency = self.metrics.histogram(
            "repro_solve_latency_seconds",
            "End-to-end scheduler latency per request (cache hits included).",
            labels=shard_labels,
        )
        self._queue_wait = self.metrics.histogram(
            "repro_queue_wait_seconds",
            "Time a scheduled computation waited between flush and execution.",
            labels=shard_labels,
        )
        self._cache_lookup = self.metrics.histogram(
            "repro_cache_lookup_seconds",
            "Solution-cache probe latency at admission.",
            labels=shard_labels,
        )
        self._batch_solve = self.metrics.histogram(
            "repro_batch_solve_seconds",
            "Wall-clock of one dispatched solve_many batch.",
            labels=shard_labels,
        )
        self._inflight: dict[CacheKey, _Pending] = {}
        self._buffer: list[_Pending] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._closed = False
        # Counters surfaced by /stats.
        self._requests_total = 0
        self._cache_hits_total = 0
        self._coalesced_total = 0
        self._scheduled_total = 0
        self._batches_total = 0
        self._largest_batch = 0
        self._rejected_total = 0
        self._deadline_exceeded_total = 0
        self._shed_total = 0
        self._shed_by_tier: dict[str, int] = {}

    # -- admission ---------------------------------------------------------

    async def submit(
        self,
        model: object,
        policy: SolverPolicy,
        *,
        deadline: float | None = None,
        trace: TraceBuilder | None = None,
        query: str | None = None,
    ) -> ScheduledResult:
        """Answer one query, coalescing/batching it with concurrent work."""
        if self._closed:
            raise ServiceClosedError("the scheduler is closed")
        self._requests_total += 1
        started = time.perf_counter()
        # The try/finally sits directly under the increment so the latency
        # histogram's count equals ``requests_total`` exactly: cache hits,
        # rejections, deadline expiries and successes all observe once.
        try:
            return await self._submit_admitted(model, policy, deadline, trace, query)
        finally:
            elapsed = time.perf_counter() - started
            self._solve_latency.observe(elapsed)
            if self._slo is not None:
                self._slo.observe_solve_latency(elapsed)

    async def _submit_admitted(
        self,
        model: object,
        policy: SolverPolicy,
        deadline: float | None,
        trace: TraceBuilder | None,
        query: str | None,
    ) -> ScheduledResult:
        key = self.cache.key(model, policy)
        # probe(), not lookup(): a miss here is re-counted by solve_many when
        # the batch executes, so only the hit side registers in cache stats.
        probe_started = time.perf_counter()
        cached = self.cache.probe(key)
        probe_ended = time.perf_counter()
        self._cache_lookup.observe(probe_ended - probe_started)
        if trace is not None:
            trace.add("cache-lookup", probe_started, probe_ended, hit=cached is not None)
        if cached is not None:
            self._cache_hits_total += 1
            return ScheduledResult(outcome=cached, cached=True)

        pending = self._inflight.get(key)
        coalesced = pending is not None
        if coalesced:
            self._coalesced_total += 1
        else:
            if query is not None and self._slo is not None and self._slo.enabled:
                # Latency-aware overload control: pending_total is passed as 0
                # so depth admission stays the QueueFullError below — only the
                # SLO tracker's measured-latency pressure can shed here, which
                # is exactly what lets a slow backend trip tiered rejection
                # while the queue sits far below max_queue.
                tier = shed_decision(
                    query,
                    0,
                    max(1, self.max_queue),
                    self.shed_thresholds,
                    latency_pressure=self._slo.pressure(),
                )
                if tier is not None:
                    self._rejected_total += 1
                    self._shed_total += 1
                    self._shed_by_tier[tier] = self._shed_by_tier.get(tier, 0) + 1
                    raise LoadShedError(
                        f"shedding {tier!r} queries: rolling latency is over its "
                        "SLO target; retry shortly",
                        shard=self.shard,
                        tier=tier,
                        retry_after=self._retry_after(),
                    )
            if len(self._inflight) >= self.max_queue:
                self._rejected_total += 1
                raise QueueFullError(
                    f"the service queue is full ({self.max_queue} pending "
                    "computations); retry shortly",
                    retry_after=self._retry_after(),
                )
            loop = asyncio.get_running_loop()
            pending = _Pending(key, model, policy, loop.create_future())
            self._inflight[key] = pending
            self._buffer.append(pending)
            self._scheduled_total += 1
            self._arm_flush(loop)

        # shield(): a waiter timing out must not cancel the computation other
        # coalesced waiters (and the cache) still want.
        try:
            if deadline is not None:
                outcome = await asyncio.wait_for(asyncio.shield(pending.future), deadline)
            else:
                outcome = await asyncio.shield(pending.future)
        except TimeoutError:
            self._deadline_exceeded_total += 1
            raise DeadlineExceededError(
                f"deadline of {deadline:g}s expired before the solution was ready; "
                "the computation continues and will be cached — retry to collect it"
            ) from None
        if trace is not None:
            self._record_spans(trace, pending, coalesced, outcome)
        return ScheduledResult(outcome=outcome, coalesced=coalesced)

    def _record_spans(
        self,
        trace: TraceBuilder,
        pending: _Pending,
        coalesced: bool,
        outcome: SolveOutcome,
    ) -> None:
        """Reconstruct the pending's life as spans on ``trace``.

        Every waiter coalesced onto the computation records the *same*
        ``solve`` span id (:attr:`_Pending.solve_span_id`).  Backend attempt
        spans are laid out sequentially from the batch's execution start —
        their durations are measured, their offsets approximate (attempts of
        different batch members interleave on the executor thread).
        """
        if pending.dispatched_at is not None:
            trace.add("batch-window", pending.created_at, pending.dispatched_at)
            if pending.executed_at is not None:
                trace.add("queue-wait", pending.dispatched_at, pending.executed_at)
        if pending.executed_at is None or pending.completed_at is None:
            return
        trace.add(
            "solve",
            pending.executed_at,
            pending.completed_at,
            span_id=pending.solve_span_id,
            solver=outcome.solver,
            batch_size=pending.batch_size,
            coalesced=coalesced,
        )
        attempt_started = pending.executed_at
        for attempt in pending.attempts:
            attempt_ended = attempt_started + attempt.seconds
            annotations: dict[str, object] = {"ok": attempt.ok}
            if attempt.error:
                annotations["error"] = attempt.error
            if attempt.warm_start:
                annotations["warm_start"] = True
            trace.add(
                f"backend:{attempt.solver}", attempt_started, attempt_ended, **annotations
            )
            attempt_started = attempt_ended

    def _retry_after(self) -> float:
        """A client back-off hint: roughly one batch generation's worth."""
        backlog_batches = 1 + len(self._inflight) // self.max_batch
        return round(max(0.05, backlog_batches * max(self.batch_window, 0.01)), 3)

    # -- batching ----------------------------------------------------------

    def _arm_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        if len(self._buffer) >= self.max_batch:
            # A full buffer doesn't wait out the window.
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self.batch_window, self._on_window_elapsed)

    def _on_window_elapsed(self) -> None:
        self._flush_handle = None
        self._flush()

    def _flush(self) -> None:
        batch = self._buffer[: self.max_batch]
        del self._buffer[: self.max_batch]
        if not batch:
            return
        dispatched_at = time.perf_counter()
        for pending in batch:
            pending.dispatched_at = dispatched_at
        loop = asyncio.get_running_loop()
        if self._buffer:
            # More than one batch accumulated within the window: dispatch the
            # overflow right behind this one.
            self._flush_handle = loop.call_later(0.0, self._on_window_elapsed)
        self._batches_total += 1
        self._largest_batch = max(self._largest_batch, len(batch))
        task = loop.create_task(self._run_batch(batch))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        executed_at = time.perf_counter()
        for pending in batch:
            pending.executed_at = executed_at
            waited_since = (
                pending.dispatched_at if pending.dispatched_at is not None else pending.created_at
            )
            self._queue_wait.observe(executed_at - waited_since)
            if self._slo is not None:
                self._slo.observe_queue_wait(executed_at - waited_since)
        # solve_many fills ``profile`` with each batch member's fallback-chain
        # attempts (serial path only); they become per-backend trace spans.
        profile: dict[int, list[AttemptRecord]] = {}
        try:
            outcomes = await solve_many_async(
                [pending.model for pending in batch],
                [pending.policy for pending in batch],
                parallel=self.workers > 1 and len(batch) > 1,
                max_workers=self.workers,
                cache=self.cache,
                profile=profile,
            )
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            for pending in batch:
                self._inflight.pop(pending.key, None)
                if not pending.future.done():
                    pending.future.set_exception(exc)
                    pending.future.exception()  # silence never-retrieved noise
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        completed_at = time.perf_counter()
        self._batch_solve.observe(completed_at - executed_at)
        for index, (pending, outcome) in enumerate(zip(batch, outcomes)):
            pending.completed_at = completed_at
            pending.batch_size = len(batch)
            pending.attempts = profile.get(index, [])
            self._inflight.pop(pending.key, None)
            if not pending.future.done():
                pending.future.set_result(outcome)

    # -- lifecycle and introspection ---------------------------------------

    async def close(self) -> None:
        """Stop admitting work, flush nothing further, fail the backlog."""
        self._closed = True
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        shutdown = ServiceClosedError("the service shut down before answering")
        for pending in self._buffer:
            self._inflight.pop(pending.key, None)
            if not pending.future.done():
                pending.future.set_exception(shutdown)
                # Mark the exception retrieved: waiters that already gave up
                # (cancelled, timed out) would otherwise trigger asyncio's
                # "exception was never retrieved" teardown noise.  Waiters
                # still listening receive it through their shield regardless.
                pending.future.exception()
        self._buffer.clear()
        if self._batch_tasks:
            await asyncio.gather(*tuple(self._batch_tasks), return_exceptions=True)

    @property
    def queue_depth(self) -> int:
        """Distinct computations currently queued or executing."""
        return len(self._inflight)

    def metrics_snapshot(self) -> dict[str, object]:
        """A mergeable :meth:`~repro.obs.MetricsRegistry.to_dict` snapshot.

        Shard workers attach this to their ``stats`` pipe reply; the front
        merges the payloads bucket-wise, so the aggregated histograms equal
        single-process recordings exactly.

        The process-global numerical-health registry rides along: kernels and
        the solver facade record into :func:`numerics_registry` from whatever
        process ran the math, and attaching it here is what carries those
        series from shard workers back to the front's ``/metrics``.
        """
        payload = self.metrics.to_dict()
        payload.update(numerics_registry().to_dict())
        return payload

    def stats(self) -> dict[str, object]:
        """The scheduler section of the ``/stats`` payload."""
        return {
            "queue_depth": self.queue_depth,
            "max_queue": self.max_queue,
            "batch_window": self.batch_window,
            "max_batch": self.max_batch,
            "workers": self.workers,
            "requests_total": self._requests_total,
            "cache_hits_total": self._cache_hits_total,
            "coalesced_total": self._coalesced_total,
            "scheduled_total": self._scheduled_total,
            "batches_total": self._batches_total,
            "largest_batch": self._largest_batch,
            "rejected_total": self._rejected_total,
            "deadline_exceeded_total": self._deadline_exceeded_total,
            "shed_total": self._shed_total,
            "shed_by_tier": dict(self._shed_by_tier),
            "cache": self.cache.stats(),
        }
