"""Clients for the solver service: a synchronous one and an asyncio one.

Both speak the JSON protocol of :mod:`repro.service.protocol` and return
:class:`ServiceResponse` records — the HTTP status plus the decoded payload —
without raising on protocol-level errors, so callers (and tests) can assert
on structured ``error.code`` values directly.  :meth:`ServiceClient.solve_ok`
is the convenience wrapper that *does* raise, for scripts that only care
about the happy path.

:class:`ServiceClient` wraps :class:`http.client.HTTPConnection` with
keep-alive reuse and one transparent reconnect (a server restart between
calls otherwise surfaces as a confusing dropped socket).
:class:`AsyncServiceClient` issues requests over
:func:`asyncio.open_connection` — one connection per call, which is exactly
what a coalescing test wants: N truly concurrent sockets.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
from dataclasses import dataclass

from ..exceptions import ReproError


@dataclass(frozen=True)
class ServiceResponse:
    """One decoded HTTP exchange with the service."""

    status: int
    payload: dict
    headers: dict[str, str]

    @property
    def ok(self) -> bool:
        return self.status == 200 and self.payload.get("status") == "ok"

    @property
    def error_code(self) -> str | None:
        """The machine-readable ``error.code``, or ``None`` on success."""
        error = self.payload.get("error")
        if isinstance(error, dict):
            return error.get("code")
        return None


class ServiceCallError(ReproError):
    """A :meth:`ServiceClient.solve_ok` call returned a protocol error."""

    def __init__(self, response: ServiceResponse) -> None:
        error = response.payload.get("error", {})
        code = error.get("code", "unknown") if isinstance(error, dict) else "unknown"
        message = error.get("message", "") if isinstance(error, dict) else ""
        super().__init__(f"service call failed [{code}]: {message}")
        self.response = response
        self.code = code


def _decode(status: int, headers: dict[str, str], body: bytes) -> ServiceResponse:
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        payload = {"status": "error", "error": {"code": "bad-response", "message": repr(body)}}
    if not isinstance(payload, dict):
        payload = {"status": "error", "error": {"code": "bad-response", "message": repr(payload)}}
    return ServiceResponse(status=status, payload=payload, headers=headers)


class ServiceClient:
    """Synchronous keep-alive client (the tests' and load generator's driver)."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # -- plumbing ----------------------------------------------------------

    def _request(self, method: str, target: str, body: bytes | None = None) -> ServiceResponse:
        attempts = 2  # one transparent reconnect on a stale keep-alive socket
        for attempt in range(attempts):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                headers = {"Content-Type": "application/json"} if body else {}
                self._connection.request(method, target, body=body, headers=headers)
                response = self._connection.getresponse()
                raw = response.read()
            except (ConnectionError, http.client.HTTPException, socket.timeout, OSError):
                self.close()
                if attempt == attempts - 1:
                    raise
                continue
            if response.will_close:
                self.close()
            return _decode(
                response.status,
                {name.lower(): value for name, value in response.getheaders()},
                raw,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- endpoints ---------------------------------------------------------

    def solve(self, request: dict) -> ServiceResponse:
        """POST one query; protocol errors come back as responses, not raises."""
        return self._request("POST", "/solve", json.dumps(request).encode("utf-8"))

    def solve_ok(self, request: dict) -> dict:
        """POST one query and return its payload, raising on any failure."""
        response = self.solve(request)
        if not response.ok:
            raise ServiceCallError(response)
        return response.payload

    def healthz(self) -> ServiceResponse:
        return self._request("GET", "/healthz")

    def stats(self) -> ServiceResponse:
        return self._request("GET", "/stats")

    def trace(self, trace_id: str) -> ServiceResponse:
        """GET /traces/<id>: one retained trace's span tree."""
        return self._request("GET", f"/traces/{trace_id}")

    def traces(self, *, slow: bool = False, limit: int | None = None) -> ServiceResponse:
        """GET /traces: retained traces newest-first (``slow=True`` filters)."""
        params = []
        if slow:
            params.append("slow=1")
        if limit is not None:
            params.append(f"limit={int(limit)}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/traces{query}")

    def metrics(self) -> tuple[int, str]:
        """GET /metrics: the raw Prometheus text exposition, not JSON.

        Served over its own short-lived connection — the keep-alive
        :meth:`_request` path decodes JSON, and the exposition format is a
        different content type with its own parsers downstream.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            connection.close()

    def raw(self, method: str, target: str, body: bytes | None = None) -> ServiceResponse:
        """An escape hatch for protocol tests (wrong methods, bad bodies)."""
        return self._request(method, target, body)


class AsyncServiceClient:
    """Asyncio client: one connection per request, maximally concurrent."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    async def _request(
        self, method: str, target: str, body: bytes | None = None
    ) -> ServiceResponse:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = body or b""
            head = (
                f"{method} {target} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Connection: close\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + payload)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
        head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        lines = head_blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1]) if lines and len(lines[0].split()) >= 2 else 0
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return _decode(status, headers, body_blob)

    async def solve(self, request: dict) -> ServiceResponse:
        return await self._request("POST", "/solve", json.dumps(request).encode("utf-8"))

    async def healthz(self) -> ServiceResponse:
        return await self._request("GET", "/healthz")

    async def stats(self) -> ServiceResponse:
        return await self._request("GET", "/stats")

    async def trace(self, trace_id: str) -> ServiceResponse:
        return await self._request("GET", f"/traces/{trace_id}")
