"""The asyncio HTTP front end of the solver service.

A deliberately small HTTP/1.1 implementation over
:func:`asyncio.start_server` — no frameworks, no new dependencies — serving
these endpoints:

``POST /solve``
    The work endpoint: one JSON query in, one JSON answer out (see
    :mod:`.protocol` for the schema).
``GET /healthz``
    Liveness: ``{"status": "ok", "uptime_seconds": ..., "version": ...}``
    plus the current queue depth, so load balancers can shed before the
    admission controller has to.
``GET /stats``
    The full observability payload: uptime, scheduler counters (queue depth,
    coalesced/batched/rejected totals) and the solution-cache statistics.
``GET /metrics``
    The same telemetry in Prometheus text exposition format (0.0.4):
    per-shard latency histograms recorded by the scheduler plus counter and
    gauge series derived from the stats counters — what a scraper ingests
    without knowing the JSON schema.
``GET /traces/<id>`` and ``GET /traces``
    The trace query API, served from the :class:`~repro.obs.TraceRecorder`
    rings: one retained trace's span tree by id, or the newest retained
    traces (``?slow=1`` filters to the slow ring, ``?limit=N`` bounds the
    listing).  The sharded front additionally fans lookups out to its shard
    workers and merges their spans.

Every request is assigned a trace id, echoed as ``trace_id`` in JSON
payloads and as an ``X-Trace-Id`` response header; ``/solve`` requests
additionally build a full span trace through the scheduler, kept in a
bounded in-memory ring (:class:`~repro.obs.TraceRecorder`) with slow
requests emitted to the structured log.

Connections are persistent (HTTP/1.1 keep-alive) and each *connection* is
served by its own task, so one slow solve never blocks the accept loop or
other connections; requests on a single connection are answered in order
(no pipelining), which is what the stdlib sync client expects anyway —
concurrency-hungry clients open concurrent connections, as
:class:`~repro.service.client.AsyncServiceClient` does.

:class:`ThreadedService` runs a service on a private event loop in a
background thread — the harness the tests, the benchmark load generator and
embedding applications use.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
import urllib.parse
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from .. import package_version
from ..exceptions import CachePersistenceError
from ..obs import (
    MetricsRegistry,
    TraceBuilder,
    TraceRecorder,
    configure_logging,
    get_logger,
    new_trace_id,
)
from ..obs.slo import (
    DEFAULT_QUEUE_WAIT_TARGET_SECONDS,
    DEFAULT_SOLVE_LATENCY_TARGET_SECONDS,
    SloTargets,
    SloTracker,
)
from ..solvers import SolutionCache
from . import protocol
from .errors import (
    BadRequestError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    ServiceError,
    SolveFailedError,
)
from .scheduler import (
    DEFAULT_BATCH_WINDOW,
    DEFAULT_CACHE_MAXSIZE,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    DEFAULT_SHED_THRESHOLDS,
    BatchScheduler,
)
from .worker import DEFAULT_SPILL_INTERVAL, shard_cache_path

#: Largest declared over-bound body the server drains before answering 413.
_MAX_DRAIN_BYTES = 16_000_000

#: Reason phrases for the status codes the service emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SolverService` instance.

    ``port=0`` binds an ephemeral port (what the tests use); the bound port
    is available as :attr:`SolverService.port` after ``start()``.

    ``workers`` selects the serving tier: ``1`` is the single-process
    service, ``> 1`` makes :func:`build_service` construct the sharded
    multi-process front (:class:`~repro.service.sharding.ShardedService`)
    with one worker process per shard.  ``cache_dir`` enables cache
    persistence — snapshots are loaded on startup, spilled every
    ``spill_interval`` seconds and on graceful shutdown.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 1
    batch_window: float = DEFAULT_BATCH_WINDOW
    max_queue: int = DEFAULT_MAX_QUEUE
    max_batch: int = DEFAULT_MAX_BATCH
    cache_maxsize: int = DEFAULT_CACHE_MAXSIZE
    max_body_bytes: int = 1_000_000
    cache_dir: str | None = None
    spill_interval: float = DEFAULT_SPILL_INTERVAL
    shed_thresholds: tuple[float, ...] = field(default=DEFAULT_SHED_THRESHOLDS)
    #: Log rendering: ``"text"`` or ``"json"`` (``repro serve --log-format``).
    log_format: str = "text"
    #: Completed traces at least this slow are emitted to the log in full.
    slow_request_seconds: float = 1.0
    #: Bound on the in-memory ring of recent request traces.
    trace_ring: int = 256
    #: Every Nth trace is retained as an exemplar regardless of latency
    #: (``0`` disables exemplar sampling).
    trace_exemplar_interval: int = 32
    #: Rolling-p99 queue-wait SLO target in seconds (``0`` disables the
    #: objective and its latency-pressure shedding).
    slo_queue_wait_seconds: float = DEFAULT_QUEUE_WAIT_TARGET_SECONDS
    #: Rolling-p99 end-to-end solve-latency SLO target in seconds.
    slo_solve_latency_seconds: float = DEFAULT_SOLVE_LATENCY_TARGET_SECONDS


class SolverService:
    """The long-running solver service: HTTP front end + batching scheduler."""

    def __init__(
        self, config: ServiceConfig | None = None, *, cache: SolutionCache | None = None
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        if cache is None:
            cache = SolutionCache(maxsize=self.config.cache_maxsize)
        self.slo = SloTracker(
            SloTargets(
                queue_wait_p99_seconds=self.config.slo_queue_wait_seconds,
                solve_latency_p99_seconds=self.config.slo_solve_latency_seconds,
            )
        )
        self.scheduler = BatchScheduler(
            batch_window=self.config.batch_window,
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
            workers=self.config.workers,
            cache=cache,
            shard=0,
            slo=self.slo,
            shed_thresholds=self.config.shed_thresholds,
        )
        self._log = get_logger("repro.service")
        self.traces = TraceRecorder(
            self.config.trace_ring,
            slow_threshold_seconds=self.config.slow_request_seconds,
            exemplar_interval=self.config.trace_exemplar_interval,
            logger=self._log,
        )
        self._server: asyncio.Server | None = None
        self._spill_task: asyncio.Task | None = None
        self._started_monotonic: float | None = None
        self._started_wallclock: float | None = None
        self._responses_total = 0
        self._errors_total = 0
        self._errors_by_code: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful once started)."""
        if self._server is None:
            raise RuntimeError("the service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("the service is already started")
        await self._load_cache_snapshot()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._started_monotonic = time.monotonic()
        self._started_wallclock = time.time()
        if self._snapshot_path() is not None and self.config.spill_interval > 0:
            self._spill_task = asyncio.get_running_loop().create_task(self._spill_periodically())

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and fail queued (unstarted) work."""
        if self._spill_task is not None:
            self._spill_task.cancel()
            await asyncio.gather(self._spill_task, return_exceptions=True)
            self._spill_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()
        await self._spill_cache_snapshot()

    # -- cache persistence (single-process mode; shards handle their own) ---

    def _snapshot_path(self) -> Path | None:
        """Where this service's cache spills, or ``None`` when not persisted.

        The sharded tier persists per worker process instead (each shard owns
        ``shard-<i>.json``), so this path exists only in single-process mode;
        the single process is "shard 0" of a one-shard deployment, keeping
        snapshots interchangeable when a deployment later scales out.
        """
        if self.config.cache_dir is None or self.config.workers != 1:
            return None
        return shard_cache_path(self.config.cache_dir, 0)

    async def _load_cache_snapshot(self) -> None:
        path = self._snapshot_path()
        if path is None:
            return
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self.scheduler.cache.load, path)
        except CachePersistenceError:
            # A torn or incompatible snapshot means a cold start, not an
            # outage; the next spill overwrites it.
            pass

    async def _spill_cache_snapshot(self) -> None:
        path = self._snapshot_path()
        if path is None:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.scheduler.cache.spill, path)

    async def _spill_periodically(self) -> None:
        while True:
            await asyncio.sleep(self.config.spill_interval)
            await self._spill_cache_snapshot()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                except ServiceError as error:
                    # Pre-routing failures (an oversized body that was never
                    # read) still deserve a structured answer; the connection
                    # cannot be reused because the body is still on the wire.
                    status, payload, extra_headers = self._error_response(error)
                    writer.write(self._render_response(status, payload, extra_headers, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, extra_headers = await self._dispatch(method, target, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                writer.write(self._render_response(status, payload, extra_headers, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, TimeoutError):
            pass
        finally:
            # Loop teardown cancels connection handlers mid-read; the
            # CancelledError must propagate (a cancelled task ending with
            # CancelledError is silent, and absorbing it would turn "shut
            # down now" into "keep serving") — but only after the transport
            # is released below.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, TimeoutError):
                # Teardown race: the peer vanished mid-close.
                pass

    @staticmethod
    async def _read_line(reader: asyncio.StreamReader) -> bytes:
        """One header line, treating an over-limit line as a dropped client.

        ``StreamReader.readline`` raises :class:`ValueError` when a line
        exceeds the reader's buffer limit (64 KiB by default); re-raising it
        as the incomplete-read signal makes the handler drop the connection
        quietly instead of spraying an unhandled-exception traceback per
        oversized (or malicious) request.
        """
        try:
            return await reader.readline()
        except ValueError as exc:
            raise asyncio.IncompleteReadError(b"", None) from exc

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        request_line = await self._read_line(reader)
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(request_line, None)
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await self._read_line(reader)
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise asyncio.IncompleteReadError(line, None) from None
        if length > self.config.max_body_bytes:
            # Drain moderate overruns before answering: closing a socket with
            # unread data sends an RST that can destroy the 413 response
            # in-flight.  Absurd declared lengths are not worth draining —
            # the structured answer is then best-effort.
            if length <= _MAX_DRAIN_BYTES:
                try:
                    await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    pass
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte bound"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _render_response(
        self,
        status: int,
        payload: dict | bytes,
        extra_headers: dict[str, str] | None,
        keep_alive: bool,
    ) -> bytes:
        headers = dict(extra_headers or {})
        if isinstance(payload, bytes):
            # A pre-encoded body (the /metrics text exposition); the handler
            # supplies its Content-Type through the extra headers.
            body = payload
            content_type = headers.pop("Content-Type", "text/plain; charset=utf-8")
        else:
            body = protocol.encode_response(payload)
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self._responses_total += 1
        if status >= 400:
            self._errors_total += 1
        return head + body

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict | bytes, dict[str, str] | None]:
        """Route one request; every failure becomes a structured error.

        A trace id is minted here for every request and travels with it:
        ``/solve`` builds a full span trace through the scheduler, the other
        endpoints simply echo the id (payload ``trace_id`` + ``X-Trace-Id``
        header) so any answer can be matched to a log line.
        """
        target, _, query_string = target.partition("?")
        trace = TraceBuilder()
        headers = {"X-Trace-Id": trace.trace_id}
        try:
            if target == "/traces" or target.startswith("/traces/"):
                if method != "GET":
                    raise MethodNotAllowedError("/traces accepts GET only")
                if target == "/traces":
                    slow, limit = _parse_traces_query(query_string)
                    payload = await self._traces_payload(slow=slow, limit=limit)
                else:
                    payload = await self._trace_payload(target[len("/traces/") :])
                payload["trace_id"] = trace.trace_id
                return 200, payload, headers
            if target == "/solve":
                if method != "POST":
                    raise MethodNotAllowedError("/solve accepts POST only")
                return await self._solve(body, trace)
            if target == "/healthz":
                if method != "GET":
                    raise MethodNotAllowedError("/healthz accepts GET only")
                payload = await self._healthz_payload()
                payload["trace_id"] = trace.trace_id
                return 200, payload, headers
            if target == "/stats":
                if method != "GET":
                    raise MethodNotAllowedError("/stats accepts GET only")
                payload = await self._stats_payload()
                payload["trace_id"] = trace.trace_id
                return 200, payload, headers
            if target == "/metrics":
                if method != "GET":
                    raise MethodNotAllowedError("/metrics accepts GET only")
                text = await self._metrics_payload()
                return 200, text.encode("utf-8"), {
                    **headers,
                    "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
                }
            raise NotFoundError(
                f"no such endpoint {target!r}; "
                "available: /solve, /healthz, /stats, /metrics, /traces, /traces/<id>"
            )
        except ServiceError as error:
            return self._error_response(error, trace_id=trace.trace_id)
        except Exception as error:  # noqa: BLE001 - last-resort 500, never a dropped socket
            return self._error_response(
                ServiceError(f"internal error: {type(error).__name__}: {error}"),
                trace_id=trace.trace_id,
            )

    def _error_response(
        self, error: ServiceError, trace_id: str | None = None
    ) -> tuple[int, dict, dict[str, str] | None]:
        self._errors_by_code[error.code] = self._errors_by_code.get(error.code, 0) + 1
        trace_id = trace_id if trace_id else new_trace_id()
        headers: dict[str, str] = {"X-Trace-Id": trace_id}
        if error.retry_after is not None:
            headers["Retry-After"] = f"{error.retry_after:g}"
        payload = {"status": "error", "trace_id": trace_id, "error": error.payload()}
        return error.http_status, payload, headers

    async def _solve(
        self, body: bytes, trace: TraceBuilder
    ) -> tuple[int, dict, dict[str, str]]:
        started = time.perf_counter()
        try:
            if not body:
                raise BadRequestError("POST /solve requires a JSON body")
            with trace.timed("admission"):
                request = protocol.parse_solve_request(protocol.parse_body(body))
            result = await self.scheduler.submit(
                request.model,
                request.policy,
                deadline=request.deadline,
                trace=trace,
                query=request.query,
            )
            outcome = result.outcome
            if outcome.solver is None:
                raise SolveFailedError(outcome.error or "no solver succeeded")
        except ServiceError as error:
            # Failed requests leave a trace too — a shed or timed-out request
            # is exactly the one worth a where-did-the-time-go record.
            self.traces.record(trace.finish(error.code))
            raise
        self.traces.record(trace.finish("ok"))
        payload = {
            "status": "ok",
            "trace_id": trace.trace_id,
            "query": request.query,
            "solver": outcome.solver,
            "stable": outcome.stable,
            "metrics": dict(outcome.metrics),
            "cached": result.cached,
            "coalesced": result.coalesced,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }
        return 200, payload, {"X-Trace-Id": trace.trace_id}

    async def _trace_payload(self, trace_id: str) -> dict:
        """``GET /traces/<id>``: the retained trace's full span tree."""
        found = self.traces.find(trace_id)
        if found is None:
            raise NotFoundError(
                f"no retained trace {trace_id!r}; it may have fallen off the ring "
                f"(capacity {self.traces.capacity})"
            )
        return {"status": "ok", "trace": found.to_dict()}

    async def _traces_payload(self, *, slow: bool, limit: int) -> dict:
        """``GET /traces``: retained traces newest-first (``?slow=1`` filters)."""
        listed = self.traces.query(slow=slow, limit=limit)
        return {
            "status": "ok",
            "count": len(listed),
            "slow": slow,
            "traces": [retained.to_dict() for retained in listed],
        }

    async def _healthz_payload(self) -> dict:
        """The liveness payload (async so the sharded tier can poll workers)."""
        return {
            "status": "ok",
            "version": package_version(),
            "uptime_seconds": round(time.monotonic() - (self._started_monotonic or 0.0), 3),
            "queue_depth": self.scheduler.queue_depth,
            "max_queue": self.scheduler.max_queue,
        }

    async def _stats_payload(self) -> dict:
        """The observability payload (async so the sharded tier can aggregate)."""
        return {
            "status": "ok",
            "started_at": self._started_wallclock,
            "uptime_seconds": round(time.monotonic() - (self._started_monotonic or 0.0), 3),
            "responses_total": self._responses_total,
            "errors_total": self._errors_total,
            "errors_by_code": dict(self._errors_by_code),
            "scheduler": self.scheduler.stats(),
            "slo": self.slo.snapshot(),
        }

    async def _metrics_payload(self) -> str:
        """The ``GET /metrics`` body: a fresh snapshot registry, rendered.

        Built per scrape rather than kept live: histogram series come from
        the scheduler's registry (exact copies), counter/gauge series are
        derived from the same stats integers ``/stats`` reports — one source
        of truth, two encodings.
        """
        registry = MetricsRegistry()
        registry.merge_dict(self.scheduler.metrics_snapshot())
        merge_shard_stats_metrics(registry, 0, self.scheduler.stats())
        self._front_metrics(registry)
        return registry.render()

    def _front_metrics(self, registry: MetricsRegistry) -> None:
        """Front-process series every tier exposes: HTTP, uptime, traces."""
        registry.counter("repro_http_responses_total", "HTTP responses written.").inc(
            float(self._responses_total)
        )
        registry.counter("repro_http_errors_total", "HTTP error responses written.").inc(
            float(self._errors_total)
        )
        for code, count in self._errors_by_code.items():
            registry.counter(
                "repro_http_errors_by_code_total",
                "HTTP error responses by structured error code.",
                labels={"code": code},
            ).inc(float(count))
        registry.gauge(
            "repro_uptime_seconds", "Seconds since the service started."
        ).set(time.monotonic() - (self._started_monotonic or time.monotonic()))
        registry.counter(
            "repro_traces_recorded_total", "Request traces recorded in the ring."
        ).inc(float(self.traces.recorded_total))
        registry.counter(
            "repro_traces_slow_total", "Traces over the slow-request threshold."
        ).inc(float(self.traces.slow_total))
        registry.counter(
            "repro_traces_exemplars_total",
            "Traces retained as periodic exemplars regardless of latency.",
        ).inc(float(self.traces.exemplar_total))
        self.slo.export_into(registry)


def _parse_traces_query(query_string: str) -> tuple[bool, int]:
    """The ``(slow, limit)`` pair of a ``GET /traces`` query string."""
    params = urllib.parse.parse_qs(query_string, keep_blank_values=True)
    slow_text = params.get("slow", ["0"])[-1].strip().lower()
    slow = slow_text in ("1", "true", "yes", "")
    limit_text = params.get("limit", ["32"])[-1]
    try:
        limit = int(limit_text)
    except ValueError:
        raise BadRequestError(f"limit must be an integer, got {limit_text!r}") from None
    if limit < 1:
        raise BadRequestError(f"limit must be >= 1, got {limit}")
    return slow, limit


#: ``/stats`` scheduler counters exported as Prometheus counter families —
#: the mapping both serving tiers use, so metric names cannot drift by tier.
_SCHEDULER_COUNTERS: dict[str, tuple[str, str]] = {
    "requests_total": (
        "repro_requests_total",
        "Requests admitted by the scheduler.",
    ),
    "cache_hits_total": (
        "repro_cache_hits_total",
        "Requests answered straight from the solution cache.",
    ),
    "coalesced_total": (
        "repro_coalesced_total",
        "Requests attached to an identical in-flight computation.",
    ),
    "scheduled_total": (
        "repro_scheduled_total",
        "Distinct computations scheduled.",
    ),
    "batches_total": (
        "repro_batches_total",
        "Solve batches dispatched.",
    ),
    "rejected_total": (
        "repro_rejected_total",
        "Requests rejected by admission control.",
    ),
    "deadline_exceeded_total": (
        "repro_deadline_exceeded_total",
        "Requests whose deadline expired before the solution was ready.",
    ),
}

#: Solution-cache counters exported per shard, same contract.
_CACHE_COUNTERS: dict[str, tuple[str, str]] = {
    "hits": ("repro_cache_lookup_hits_total", "Solution-cache lookup hits."),
    "misses": ("repro_cache_lookup_misses_total", "Solution-cache lookup misses."),
    "solves": ("repro_cache_solves_total", "Fresh solves recorded by the cache."),
    "evictions": ("repro_cache_evictions_total", "Cache entries evicted by the LRU bound."),
    "spills": ("repro_cache_spills_total", "Cache snapshots spilled to disk."),
    "spilled_entries": (
        "repro_cache_spilled_entries_total",
        "Entries written across all cache spills.",
    ),
    "loads": ("repro_cache_loads_total", "Cache snapshots loaded from disk."),
    "loaded_entries": (
        "repro_cache_loaded_entries_total",
        "Entries restored across all cache loads.",
    ),
}


def merge_shard_stats_metrics(
    registry: MetricsRegistry, shard: int, stats: Mapping[str, object]
) -> None:
    """Derive one shard's counter/gauge series from its ``/stats`` section.

    The integers are the very ones ``/stats`` reports (scheduler counters and
    the cache's hit/miss/solve/eviction totals), re-encoded as labelled
    Prometheus series; missing or non-numeric entries are skipped so an older
    worker's stats payload degrades instead of failing the scrape.
    """
    labels = {"shard": str(shard)}
    for stats_key, (name, help_text) in _SCHEDULER_COUNTERS.items():
        value = stats.get(stats_key)
        if isinstance(value, (int, float)):
            registry.counter(name, help_text, labels=labels).inc(float(value))
    shed = stats.get("shed_total")
    if isinstance(shed, (int, float)):
        registry.counter(
            "repro_shed_total", "Requests shed by tiered admission control.", labels=labels
        ).inc(float(shed))
    shed_by_tier = stats.get("shed_by_tier")
    if isinstance(shed_by_tier, Mapping):
        for tier, count in sorted(shed_by_tier.items()):
            if isinstance(count, (int, float)):
                registry.counter(
                    "repro_shed_by_tier_total",
                    "Requests shed, by query tier.",
                    labels={**labels, "tier": str(tier)},
                ).inc(float(count))
    depth = stats.get("queue_depth")
    if isinstance(depth, (int, float)):
        registry.gauge(
            "repro_queue_depth",
            "Distinct computations queued or executing.",
            labels=labels,
        ).set(float(depth))
    cache_stats = stats.get("cache")
    if isinstance(cache_stats, Mapping):
        for stats_key, (name, help_text) in _CACHE_COUNTERS.items():
            value = cache_stats.get(stats_key)
            if isinstance(value, (int, float)):
                registry.counter(name, help_text, labels=labels).inc(float(value))
        size = cache_stats.get("size")
        if isinstance(size, (int, float)):
            registry.gauge(
                "repro_cache_entries", "Entries in the solution cache.", labels=labels
            ).set(float(size))


def build_service(
    config: ServiceConfig | None = None, *, cache: SolutionCache | None = None
) -> SolverService:
    """The service matching ``config``: sharded when ``workers > 1``.

    The sharded tier is imported lazily so single-process deployments (and
    the spawned shard workers themselves, which import this module) never pay
    for — or recurse into — the multiprocessing front.
    """
    config = config if config is not None else ServiceConfig()
    if config.workers > 1:
        from .sharding import ShardedService

        return ShardedService(config, cache=cache)
    return SolverService(config, cache=cache)


def run_service(config: ServiceConfig | None = None) -> int:
    """Run a service until interrupted (the ``repro serve`` entry point).

    SIGTERM (the fleet-orchestrator stop signal) and Ctrl-C both shut the
    service down gracefully — in-flight work is answered where possible and
    caches spill to ``cache_dir`` before the process exits.
    """

    async def _main() -> None:
        service = build_service(config)
        configure_logging(service.config.log_format)
        await service.start()
        stopped = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stopped.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass
        workers = service.config.workers
        get_logger("repro.service").info(
            "service-started",
            url=f"http://{service.host}:{service.port}",
            mode="sharded" if workers > 1 else "single-process",
            workers=workers,
            endpoints=(
                "POST /solve, GET /healthz, GET /stats, GET /metrics, "
                "GET /traces, GET /traces/<id>"
            ),
            stop="Ctrl-C or SIGTERM",
        )
        serve_task = loop.create_task(service.serve_forever())
        stop_task = loop.create_task(stopped.wait())
        try:
            await asyncio.wait({serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    get_logger("repro.service").info("service-stopped")
    return 0


class ThreadedService:
    """A :class:`SolverService` on a private event loop in a daemon thread.

    The synchronous harness everything outside asyncio uses: tests, the
    benchmark load generator, interactive sessions.  Usable as a context
    manager::

        with ThreadedService(ServiceConfig(port=0)) as service:
            client = ServiceClient(service.host, service.port)
            client.solve({...})
    """

    def __init__(
        self, config: ServiceConfig | None = None, *, cache: SolutionCache | None = None
    ) -> None:
        self._config = config if config is not None else ServiceConfig(port=0)
        self._cache = cache
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._service: SolverService | None = None
        self._startup_error: BaseException | None = None
        self.host: str = self._config.host
        self.port: int | None = None

    def start(self) -> "ThreadedService":
        if self._thread is not None:
            raise RuntimeError("the service thread is already started")
        self._thread = threading.Thread(target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):  # pragma: no cover - hang guard
            raise RuntimeError("the service thread failed to start within 30s")
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError("the service failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    @property
    def service(self) -> SolverService:
        """The underlying service object (meaningful once started)."""
        if self._service is None:
            raise RuntimeError("the service is not started")
        return self._service

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        service = build_service(self._config, cache=self._cache)
        try:
            await service.start()
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            self._startup_error = exc
            self._ready.set()
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        self._service = service
        self.port = service.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await service.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    @property
    def address(self) -> str:
        """The service's base URL."""
        if self.port is None:
            raise RuntimeError("the service is not started")
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ThreadedService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
