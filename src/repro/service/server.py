"""The asyncio HTTP front end of the solver service.

A deliberately small HTTP/1.1 implementation over
:func:`asyncio.start_server` — no frameworks, no new dependencies — serving
three endpoints:

``POST /solve``
    The work endpoint: one JSON query in, one JSON answer out (see
    :mod:`.protocol` for the schema).
``GET /healthz``
    Liveness: ``{"status": "ok", "uptime_seconds": ...}`` plus the current
    queue depth, so load balancers can shed before the admission controller
    has to.
``GET /stats``
    The full observability payload: uptime, scheduler counters (queue depth,
    coalesced/batched/rejected totals) and the solution-cache statistics.

Connections are persistent (HTTP/1.1 keep-alive) and each *connection* is
served by its own task, so one slow solve never blocks the accept loop or
other connections; requests on a single connection are answered in order
(no pipelining), which is what the stdlib sync client expects anyway —
concurrency-hungry clients open concurrent connections, as
:class:`~repro.service.client.AsyncServiceClient` does.

:class:`ThreadedService` runs a service on a private event loop in a
background thread — the harness the tests, the benchmark load generator and
embedding applications use.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import CachePersistenceError
from ..solvers import SolutionCache
from . import protocol
from .errors import (
    BadRequestError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    ServiceError,
    SolveFailedError,
)
from .scheduler import (
    DEFAULT_BATCH_WINDOW,
    DEFAULT_CACHE_MAXSIZE,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    BatchScheduler,
)
from .worker import DEFAULT_SPILL_INTERVAL, shard_cache_path

#: Default load fractions of total capacity at which the sharded front sheds
#: each query tier, cheapest-to-recompute first (steady-state, scenario,
#: transient) — see :func:`repro.service.sharding.shed_decision`.
DEFAULT_SHED_THRESHOLDS = (0.7, 0.85, 1.0)

#: Largest declared over-bound body the server drains before answering 413.
_MAX_DRAIN_BYTES = 16_000_000

#: Reason phrases for the status codes the service emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SolverService` instance.

    ``port=0`` binds an ephemeral port (what the tests use); the bound port
    is available as :attr:`SolverService.port` after ``start()``.

    ``workers`` selects the serving tier: ``1`` is the single-process
    service, ``> 1`` makes :func:`build_service` construct the sharded
    multi-process front (:class:`~repro.service.sharding.ShardedService`)
    with one worker process per shard.  ``cache_dir`` enables cache
    persistence — snapshots are loaded on startup, spilled every
    ``spill_interval`` seconds and on graceful shutdown.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 1
    batch_window: float = DEFAULT_BATCH_WINDOW
    max_queue: int = DEFAULT_MAX_QUEUE
    max_batch: int = DEFAULT_MAX_BATCH
    cache_maxsize: int = DEFAULT_CACHE_MAXSIZE
    max_body_bytes: int = 1_000_000
    cache_dir: str | None = None
    spill_interval: float = DEFAULT_SPILL_INTERVAL
    shed_thresholds: tuple[float, ...] = field(default=DEFAULT_SHED_THRESHOLDS)


class SolverService:
    """The long-running solver service: HTTP front end + batching scheduler."""

    def __init__(
        self, config: ServiceConfig | None = None, *, cache: SolutionCache | None = None
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        if cache is None:
            cache = SolutionCache(maxsize=self.config.cache_maxsize)
        self.scheduler = BatchScheduler(
            batch_window=self.config.batch_window,
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
            workers=self.config.workers,
            cache=cache,
        )
        self._server: asyncio.Server | None = None
        self._spill_task: asyncio.Task | None = None
        self._started_monotonic: float | None = None
        self._started_wallclock: float | None = None
        self._responses_total = 0
        self._errors_total = 0
        self._errors_by_code: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful once started)."""
        if self._server is None:
            raise RuntimeError("the service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("the service is already started")
        await self._load_cache_snapshot()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._started_monotonic = time.monotonic()
        self._started_wallclock = time.time()
        if self._snapshot_path() is not None and self.config.spill_interval > 0:
            self._spill_task = asyncio.get_running_loop().create_task(self._spill_periodically())

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("call start() before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and fail queued (unstarted) work."""
        if self._spill_task is not None:
            self._spill_task.cancel()
            await asyncio.gather(self._spill_task, return_exceptions=True)
            self._spill_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()
        await self._spill_cache_snapshot()

    # -- cache persistence (single-process mode; shards handle their own) ---

    def _snapshot_path(self) -> Path | None:
        """Where this service's cache spills, or ``None`` when not persisted.

        The sharded tier persists per worker process instead (each shard owns
        ``shard-<i>.json``), so this path exists only in single-process mode;
        the single process is "shard 0" of a one-shard deployment, keeping
        snapshots interchangeable when a deployment later scales out.
        """
        if self.config.cache_dir is None or self.config.workers != 1:
            return None
        return shard_cache_path(self.config.cache_dir, 0)

    async def _load_cache_snapshot(self) -> None:
        path = self._snapshot_path()
        if path is None:
            return
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self.scheduler.cache.load, path)
        except CachePersistenceError:
            # A torn or incompatible snapshot means a cold start, not an
            # outage; the next spill overwrites it.
            pass

    async def _spill_cache_snapshot(self) -> None:
        path = self._snapshot_path()
        if path is None:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.scheduler.cache.spill, path)

    async def _spill_periodically(self) -> None:
        while True:
            await asyncio.sleep(self.config.spill_interval)
            await self._spill_cache_snapshot()

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                except ServiceError as error:
                    # Pre-routing failures (an oversized body that was never
                    # read) still deserve a structured answer; the connection
                    # cannot be reused because the body is still on the wire.
                    status, payload, extra_headers = self._error_response(error)
                    writer.write(self._render_response(status, payload, extra_headers, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, target, headers, body = request
                status, payload, extra_headers = await self._dispatch(method, target, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                writer.write(self._render_response(status, payload, extra_headers, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, TimeoutError):
            pass
        finally:
            # Loop teardown cancels connection handlers mid-read; the
            # CancelledError must propagate (a cancelled task ending with
            # CancelledError is silent, and absorbing it would turn "shut
            # down now" into "keep serving") — but only after the transport
            # is released below.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, TimeoutError):
                # Teardown race: the peer vanished mid-close.
                pass

    @staticmethod
    async def _read_line(reader: asyncio.StreamReader) -> bytes:
        """One header line, treating an over-limit line as a dropped client.

        ``StreamReader.readline`` raises :class:`ValueError` when a line
        exceeds the reader's buffer limit (64 KiB by default); re-raising it
        as the incomplete-read signal makes the handler drop the connection
        quietly instead of spraying an unhandled-exception traceback per
        oversized (or malicious) request.
        """
        try:
            return await reader.readline()
        except ValueError as exc:
            raise asyncio.IncompleteReadError(b"", None) from exc

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        request_line = await self._read_line(reader)
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(request_line, None)
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await self._read_line(reader)
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise asyncio.IncompleteReadError(line, None) from None
        if length > self.config.max_body_bytes:
            # Drain moderate overruns before answering: closing a socket with
            # unread data sends an RST that can destroy the 413 response
            # in-flight.  Absurd declared lengths are not worth draining —
            # the structured answer is then best-effort.
            if length <= _MAX_DRAIN_BYTES:
                try:
                    await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    pass
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte bound"
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _render_response(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None,
        keep_alive: bool,
    ) -> bytes:
        body = protocol.encode_response(payload)
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self._responses_total += 1
        if status >= 400:
            self._errors_total += 1
        return head + body

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict, dict[str, str] | None]:
        """Route one request; every failure becomes a structured error."""
        target = target.split("?", 1)[0]
        try:
            if target == "/solve":
                if method != "POST":
                    raise MethodNotAllowedError("/solve accepts POST only")
                return await self._solve(body)
            if target == "/healthz":
                if method != "GET":
                    raise MethodNotAllowedError("/healthz accepts GET only")
                return 200, await self._healthz_payload(), None
            if target == "/stats":
                if method != "GET":
                    raise MethodNotAllowedError("/stats accepts GET only")
                return 200, await self._stats_payload(), None
            raise NotFoundError(
                f"no such endpoint {target!r}; available: /solve, /healthz, /stats"
            )
        except ServiceError as error:
            return self._error_response(error)
        except Exception as error:  # noqa: BLE001 - last-resort 500, never a dropped socket
            return self._error_response(
                ServiceError(f"internal error: {type(error).__name__}: {error}")
            )

    def _error_response(self, error: ServiceError) -> tuple[int, dict, dict[str, str] | None]:
        self._errors_by_code[error.code] = self._errors_by_code.get(error.code, 0) + 1
        headers: dict[str, str] | None = None
        if error.retry_after is not None:
            headers = {"Retry-After": f"{error.retry_after:g}"}
        return error.http_status, {"status": "error", "error": error.payload()}, headers

    async def _solve(self, body: bytes) -> tuple[int, dict, None]:
        started = time.perf_counter()
        if not body:
            raise BadRequestError("POST /solve requires a JSON body")
        request = protocol.parse_solve_request(protocol.parse_body(body))
        result = await self.scheduler.submit(
            request.model, request.policy, deadline=request.deadline
        )
        outcome = result.outcome
        if outcome.solver is None:
            raise SolveFailedError(outcome.error or "no solver succeeded")
        payload = {
            "status": "ok",
            "query": request.query,
            "solver": outcome.solver,
            "stable": outcome.stable,
            "metrics": dict(outcome.metrics),
            "cached": result.cached,
            "coalesced": result.coalesced,
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }
        return 200, payload, None

    async def _healthz_payload(self) -> dict:
        """The liveness payload (async so the sharded tier can poll workers)."""
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - (self._started_monotonic or 0.0), 3),
            "queue_depth": self.scheduler.queue_depth,
            "max_queue": self.scheduler.max_queue,
        }

    async def _stats_payload(self) -> dict:
        """The observability payload (async so the sharded tier can aggregate)."""
        return {
            "status": "ok",
            "started_at": self._started_wallclock,
            "uptime_seconds": round(time.monotonic() - (self._started_monotonic or 0.0), 3),
            "responses_total": self._responses_total,
            "errors_total": self._errors_total,
            "errors_by_code": dict(self._errors_by_code),
            "scheduler": self.scheduler.stats(),
        }


def build_service(
    config: ServiceConfig | None = None, *, cache: SolutionCache | None = None
) -> SolverService:
    """The service matching ``config``: sharded when ``workers > 1``.

    The sharded tier is imported lazily so single-process deployments (and
    the spawned shard workers themselves, which import this module) never pay
    for — or recurse into — the multiprocessing front.
    """
    config = config if config is not None else ServiceConfig()
    if config.workers > 1:
        from .sharding import ShardedService

        return ShardedService(config, cache=cache)
    return SolverService(config, cache=cache)


def run_service(config: ServiceConfig | None = None) -> int:
    """Run a service until interrupted (the ``repro serve`` entry point).

    SIGTERM (the fleet-orchestrator stop signal) and Ctrl-C both shut the
    service down gracefully — in-flight work is answered where possible and
    caches spill to ``cache_dir`` before the process exits.
    """

    async def _main() -> None:
        service = build_service(config)
        await service.start()
        stopped = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stopped.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass
        workers = service.config.workers
        print(
            f"repro.service listening on http://{service.host}:{service.port} "
            f"({'sharded, ' + str(workers) + ' workers' if workers > 1 else 'single process'}; "
            "endpoints: POST /solve, GET /healthz, GET /stats; Ctrl-C or SIGTERM to stop)",
            flush=True,
        )
        serve_task = loop.create_task(service.serve_forever())
        stop_task = loop.create_task(stopped.wait())
        try:
            await asyncio.wait({serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await asyncio.gather(serve_task, stop_task, return_exceptions=True)
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro.service stopped")
    return 0


class ThreadedService:
    """A :class:`SolverService` on a private event loop in a daemon thread.

    The synchronous harness everything outside asyncio uses: tests, the
    benchmark load generator, interactive sessions.  Usable as a context
    manager::

        with ThreadedService(ServiceConfig(port=0)) as service:
            client = ServiceClient(service.host, service.port)
            client.solve({...})
    """

    def __init__(
        self, config: ServiceConfig | None = None, *, cache: SolutionCache | None = None
    ) -> None:
        self._config = config if config is not None else ServiceConfig(port=0)
        self._cache = cache
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._service: SolverService | None = None
        self._startup_error: BaseException | None = None
        self.host: str = self._config.host
        self.port: int | None = None

    def start(self) -> "ThreadedService":
        if self._thread is not None:
            raise RuntimeError("the service thread is already started")
        self._thread = threading.Thread(target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):  # pragma: no cover - hang guard
            raise RuntimeError("the service thread failed to start within 30s")
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError("the service failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    @property
    def service(self) -> SolverService:
        """The underlying service object (meaningful once started)."""
        if self._service is None:
            raise RuntimeError("the service is not started")
        return self._service

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        service = build_service(self._config, cache=self._cache)
        try:
            await service.start()
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            self._startup_error = exc
            self._ready.set()
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        self._service = service
        self.port = service.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await service.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    @property
    def address(self) -> str:
        """The service's base URL."""
        if self.port is None:
            raise RuntimeError("the service is not started")
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ThreadedService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
