"""The JSON request/response protocol of the solver service.

One endpoint does the work: ``POST /solve`` takes a JSON object describing a
query and returns the solved metrics.  Three query kinds cover everything the
library can answer:

``steady-state`` (the default)
    A homogeneous Palmer–Mitrani model described by the ``model`` object;
    solved through the full steady-state fallback chain.
``scenario``
    A named preset from :mod:`repro.scenarios` (``preset``), optionally
    overriding ``arrival_rate`` and ``repair_capacity``; solved by the
    scenario-capable chain (``ctmc`` → ``simulate``).
``transient``
    Time-dependent metrics over the ``times`` grid, for either a ``model``
    object or a ``preset``; solved by the ``transient`` backend (metrics are
    reported at the final grid time).

Request schema::

    {
      "query": "steady-state" | "scenario" | "transient",   # default steady-state
      "model": {                      # steady-state/transient without preset
        "servers": 10,                # required
        "arrival_rate": 7.0,          # required
        "service_rate": 1.0,
        "operative_mean": 34.62,
        "operative_scv": 4.6,         # >= 1 (1 = exponential)
        "repair_mean": 0.04
      },
      "preset": "two-speed-cluster",  # scenario (and scenario transients)
      "arrival_rate": 7.0,            # optional preset override
      "repair_capacity": 2,           # optional preset override
      "solvers": ["spectral", ...],   # optional fallback chain override
      "times": [1.0, 5.0, 25.0],      # transient evaluation grid
      "simulate": {"horizon": ..., "seed": ..., "num_batches": ...,
                   "warmup_fraction": ...},                  # optional
      "deadline": 2.5                 # optional per-request seconds budget
    }

A success response is ``{"status": "ok", "query": ..., "solver": ...,
"stable": true, "metrics": {...}, "cached": ..., "coalesced": ...,
"elapsed_ms": ...}``; failures are :mod:`structured errors <.errors>`.

Parsing is deliberately strict: unknown top-level keys, ill-typed fields and
unstable models are rejected *before* admission, so the scheduler only ever
sees work that can succeed, and every rejection names the offending field.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from ..distributions import Exponential, HyperExponential
from ..exceptions import ParameterError, ReproError
from ..queueing import UnreliableQueueModel
from ..scenarios import preset_names, scenario_preset
from ..solvers import SolverPolicy, solver_names
from .errors import (
    BadJSONError,
    BadRequestError,
    UnknownPresetError,
    UnknownSolverError,
    UnstableModelError,
)

#: The accepted ``query`` values, in documentation order.
QUERY_KINDS = ("steady-state", "scenario", "transient")

#: Default fallback chain per query kind, used when ``solvers`` is omitted.
DEFAULT_SOLVER_ORDERS: dict[str, tuple[str, ...]] = {
    "steady-state": ("spectral", "geometric", "ctmc", "simulate"),
    "scenario": ("ctmc", "simulate"),
    "transient": ("transient",),
}

#: Top-level request keys the parser accepts (anything else is a typo and is
#: rejected rather than silently ignored — silently dropped options are the
#: worst protocol bug to debug from the client side).
_TOP_LEVEL_KEYS = frozenset(
    {
        "query",
        "model",
        "preset",
        "arrival_rate",
        "repair_capacity",
        "solvers",
        "times",
        "simulate",
        "deadline",
    }
)

_MODEL_KEYS = frozenset(
    {"servers", "arrival_rate", "service_rate", "operative_mean", "operative_scv", "repair_mean"}
)

_SIMULATE_KEYS = frozenset({"horizon", "seed", "num_batches", "warmup_fraction"})


@dataclass(frozen=True)
class SolveRequest:
    """One validated query: a model/policy pair plus its seconds budget."""

    query: str
    model: object
    policy: SolverPolicy
    deadline: float | None = None


def parse_body(raw: bytes) -> dict:
    """Decode a request body into a JSON object, or raise ``bad-json``."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadJSONError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadJSONError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_keys(payload: dict, allowed: frozenset, *, where: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise BadRequestError(
            f"unknown {where} field(s): {', '.join(unknown)}; "
            f"accepted: {', '.join(sorted(allowed))}"
        )


def _number(
    payload: dict,
    key: str,
    *,
    where: str,
    default: float | None = None,
    required: bool = False,
    minimum: float | None = None,
    exclusive: bool = False,
) -> float | None:
    """Read one finite numeric field, enforcing presence and a lower bound."""
    if key not in payload:
        if required:
            raise BadRequestError(f"{where} field {key!r} is required")
        return default
    value = payload[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(
            f"{where} field {key!r} must be a number, got {type(value).__name__}"
        )
    value = float(value)
    if not math.isfinite(value):
        raise BadRequestError(f"{where} field {key!r} must be finite, got {value}")
    if minimum is not None and (value <= minimum if exclusive else value < minimum):
        bound = "greater than" if exclusive else "at least"
        raise BadRequestError(f"{where} field {key!r} must be {bound} {minimum}, got {value}")
    return value


def _integer(
    payload: dict, key: str, *, where: str, required: bool = False, minimum: int = 1
) -> int | None:
    if key not in payload:
        if required:
            raise BadRequestError(f"{where} field {key!r} is required")
        return None
    value = payload[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(
            f"{where} field {key!r} must be an integer, got {type(value).__name__}"
        )
    if value < minimum:
        raise BadRequestError(f"{where} field {key!r} must be at least {minimum}, got {value}")
    return value


def _homogeneous_model(payload: dict) -> UnreliableQueueModel:
    """Build the homogeneous model described by the ``model`` object."""
    if not isinstance(payload, dict):
        raise BadRequestError(
            f"'model' must be a JSON object, got {type(payload).__name__}"
        )
    _check_keys(payload, _MODEL_KEYS, where="model")
    servers = _integer(payload, "servers", where="model", required=True)
    arrival_rate = _number(
        payload, "arrival_rate", where="model", required=True, minimum=0.0, exclusive=True
    )
    service_rate = _number(
        payload, "service_rate", where="model", default=1.0, minimum=0.0, exclusive=True
    )
    operative_mean = _number(
        payload, "operative_mean", where="model", default=34.62, minimum=0.0, exclusive=True
    )
    operative_scv = _number(payload, "operative_scv", where="model", default=4.6, minimum=1.0)
    repair_mean = _number(
        payload, "repair_mean", where="model", default=0.04, minimum=0.0, exclusive=True
    )
    if operative_scv == 1.0:
        operative = Exponential(rate=1.0 / operative_mean)
    else:
        operative = HyperExponential.from_mean_and_scv(operative_mean, operative_scv)
    try:
        return UnreliableQueueModel(
            num_servers=servers,
            arrival_rate=arrival_rate,
            service_rate=service_rate,
            operative=operative,
            inoperative=Exponential(rate=1.0 / repair_mean),
        )
    except ParameterError as exc:
        raise BadRequestError(f"invalid model: {exc}") from exc


def _preset_model(payload: dict) -> object:
    """Build the scenario model named by ``preset`` (with overrides)."""
    name = payload["preset"]
    if not isinstance(name, str):
        raise BadRequestError(f"'preset' must be a string, got {type(name).__name__}")
    if name not in preset_names():
        raise UnknownPresetError(
            f"unknown scenario preset {name!r}; available: {', '.join(preset_names())}"
        )
    arrival_rate = _number(
        payload, "arrival_rate", where="request", minimum=0.0, exclusive=True
    )
    repair_capacity = _integer(payload, "repair_capacity", where="request")
    try:
        return scenario_preset(name, arrival_rate=arrival_rate, repair_capacity=repair_capacity)
    except ReproError as exc:
        raise BadRequestError(f"invalid scenario overrides: {exc}") from exc


def _solver_order(payload: dict, query: str) -> tuple[str, ...]:
    if "solvers" not in payload:
        return DEFAULT_SOLVER_ORDERS[query]
    value = payload["solvers"]
    if isinstance(value, str):
        value = [value]
    valid = isinstance(value, list) and value and all(isinstance(name, str) for name in value)
    if not valid:
        raise BadRequestError("'solvers' must be a non-empty list of solver names")
    registered = solver_names()
    for name in value:
        if name not in registered:
            raise UnknownSolverError(
                f"unknown solver {name!r}; registered solvers: {', '.join(registered)}"
            )
    return tuple(value)


def _transient_times(payload: dict) -> tuple[float, ...]:
    if "times" not in payload:
        return ()
    value = payload["times"]
    if not isinstance(value, list) or not value:
        raise BadRequestError("'times' must be a non-empty list of evaluation times")
    times: list[float] = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise BadRequestError(
                f"'times' entries must be numbers, got {type(item).__name__}"
            )
        item = float(item)
        if not math.isfinite(item) or item < 0.0:
            raise BadRequestError(f"'times' entries must be finite and non-negative, got {item}")
        times.append(item)
    return tuple(times)


def _policy(payload: dict, query: str) -> SolverPolicy:
    order = _solver_order(payload, query)
    options: dict[str, object] = {"order": order}
    if query == "transient":
        options["transient_times"] = _transient_times(payload)
    elif "times" in payload:
        raise BadRequestError("'times' applies to transient queries only")
    simulate = payload.get("simulate", {})
    if not isinstance(simulate, dict):
        raise BadRequestError(
            f"'simulate' must be a JSON object, got {type(simulate).__name__}"
        )
    if simulate:
        _check_keys(simulate, _SIMULATE_KEYS, where="simulate")
        horizon = _number(simulate, "horizon", where="simulate", minimum=0.0, exclusive=True)
        if horizon is not None:
            options["simulate_horizon"] = horizon
        seed = _integer(simulate, "seed", where="simulate", minimum=0)
        if seed is not None:
            options["simulate_seed"] = seed
        num_batches = _integer(simulate, "num_batches", where="simulate", minimum=2)
        if num_batches is not None:
            options["simulate_num_batches"] = num_batches
        warmup = _number(simulate, "warmup_fraction", where="simulate", minimum=0.0)
        if warmup is not None:
            options["simulate_warmup_fraction"] = warmup
    try:
        return SolverPolicy(**options)
    except ParameterError as exc:
        raise BadRequestError(f"invalid solver policy: {exc}") from exc


def parse_solve_request(payload: dict) -> SolveRequest:
    """Validate one ``/solve`` payload into a schedulable :class:`SolveRequest`.

    Raises a :class:`~.errors.ServiceError` subclass naming the offending
    field for every way the payload can be wrong; an unstable model is
    rejected here (``unstable-model``) so the scheduler never admits work
    whose answer cannot be serialised.
    """
    _check_keys(payload, _TOP_LEVEL_KEYS, where="request")
    query = payload.get("query", "steady-state")
    if query not in QUERY_KINDS:
        raise BadRequestError(
            f"unknown query kind {query!r}; accepted: {', '.join(QUERY_KINDS)}"
        )
    if query == "scenario" and "preset" not in payload:
        raise BadRequestError("scenario queries require a 'preset' name")
    if "preset" in payload and "model" in payload:
        raise BadRequestError(
            "'preset' and 'model' are mutually exclusive; "
            "name a preset or describe a model, not both"
        )

    if "preset" in payload:
        if query == "steady-state":
            raise BadRequestError(
                "'preset' applies to scenario and transient queries; "
                "steady-state queries take a 'model' object"
            )
        model = _preset_model(payload)
    else:
        if "model" not in payload:
            raise BadRequestError(f"{query} queries require a 'model' object")
        for override in ("arrival_rate", "repair_capacity"):
            if override in payload:
                raise BadRequestError(
                    f"top-level {override!r} overrides a 'preset'; "
                    "set it inside the 'model' object instead"
                )
        model = _homogeneous_model(payload["model"])

    deadline = _number(payload, "deadline", where="request", minimum=0.0, exclusive=True)
    policy = _policy(payload, query)
    if not model.is_stable:
        raise UnstableModelError(
            "the requested model is unstable (offered load exceeds the mean "
            "operative capacity); add servers or reduce the arrival rate"
        )
    return SolveRequest(query=query, model=model, policy=policy, deadline=deadline)


def json_safe(value: object) -> object:
    """Recursively replace non-finite floats with ``None``.

    Strict JSON has no ``Infinity``/``NaN``; stable solved metrics are always
    finite, but third-party solvers may report extras (and defensive coding
    beats a 500 from ``json.dumps(..., allow_nan=False)``).
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def encode_response(payload: dict) -> bytes:
    """Serialise one response payload as compact, strict UTF-8 JSON."""
    return json.dumps(json_safe(payload), allow_nan=False, separators=(",", ":")).encode("utf-8")
