"""repro.service — the async solver service.

Turns the library into a long-running, multi-tenant surface: an asyncio HTTP
server (``repro serve``) that answers concurrent steady-state, scenario and
transient queries as JSON, scheduling them onto the existing
:mod:`repro.solvers` facade through a batching scheduler with single-flight
request coalescing and admission-control backpressure.

The moving parts, each in its own module:

:mod:`~repro.service.protocol`
    The JSON request/response schema and its strict validator.
:mod:`~repro.service.scheduler`
    :class:`BatchScheduler` — coalescing, batch windows, bounded queue,
    per-request deadlines.
:mod:`~repro.service.server`
    :class:`SolverService` (the raw-asyncio HTTP front end with ``/solve``,
    ``/healthz`` and ``/stats``), :class:`ServiceConfig`, :func:`run_service`,
    :func:`build_service` and the thread-hosted :class:`ThreadedService`.
:mod:`~repro.service.sharding`
    :class:`ShardedService` — the multi-process tier: consistent-hash
    routing of solution keys onto a pool of shard worker processes, tiered
    load shedding, crash recovery, aggregated ``/stats``.
:mod:`~repro.service.worker`
    The shard worker entry point (one scheduler + persistent cache per
    process).
:mod:`~repro.service.client`
    :class:`ServiceClient` (sync) and :class:`AsyncServiceClient`.
:mod:`~repro.service.errors`
    The structured error vocabulary (machine-readable ``error.code``).

Example
-------

>>> from repro.service import ServiceClient, ServiceConfig, ThreadedService
>>> with ThreadedService(ServiceConfig(port=0)) as service:
...     client = ServiceClient(service.host, service.port)
...     payload = client.solve_ok(
...         {"model": {"servers": 4, "arrival_rate": 2.0}}
...     )
>>> payload["solver"]
'spectral'
"""

from .client import AsyncServiceClient, ServiceCallError, ServiceClient, ServiceResponse
from .errors import (
    BadJSONError,
    BadRequestError,
    DeadlineExceededError,
    LoadShedError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    SolveFailedError,
    UnknownPresetError,
    UnknownSolverError,
    UnstableModelError,
    WorkerCrashedError,
)
from .protocol import (
    DEFAULT_SOLVER_ORDERS,
    QUERY_KINDS,
    SolveRequest,
    parse_body,
    parse_solve_request,
)
from .scheduler import (
    DEFAULT_SHED_THRESHOLDS,
    SHED_TIER_ORDER,
    BatchScheduler,
    ScheduledResult,
    shed_decision,
)
from .server import (
    ServiceConfig,
    SolverService,
    ThreadedService,
    build_service,
    run_service,
)
from .sharding import ConsistentHashRing, ShardedService, stable_key_digest
from .worker import ShardWorkerConfig, shard_cache_path, worker_main

__all__ = [
    "AsyncServiceClient",
    "BadJSONError",
    "BadRequestError",
    "BatchScheduler",
    "ConsistentHashRing",
    "DEFAULT_SHED_THRESHOLDS",
    "DEFAULT_SOLVER_ORDERS",
    "DeadlineExceededError",
    "LoadShedError",
    "MethodNotAllowedError",
    "NotFoundError",
    "PayloadTooLargeError",
    "QUERY_KINDS",
    "QueueFullError",
    "SHED_TIER_ORDER",
    "ScheduledResult",
    "ServiceCallError",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceResponse",
    "ShardWorkerConfig",
    "ShardedService",
    "SolveFailedError",
    "SolveRequest",
    "SolverService",
    "ThreadedService",
    "UnknownPresetError",
    "UnknownSolverError",
    "UnstableModelError",
    "WorkerCrashedError",
    "build_service",
    "parse_body",
    "parse_solve_request",
    "run_service",
    "shard_cache_path",
    "shed_decision",
    "stable_key_digest",
    "worker_main",
]
