"""Consistent-hash sharding: the multi-process serving tier.

:class:`ShardedService` keeps the existing HTTP surface (``/solve``,
``/healthz``, ``/stats``, ``/metrics``) on one asyncio front process and moves the solver
work onto a pool of ``multiprocessing`` workers, one shard each.  Every
request is routed by consistent-hashing its solution key
(:func:`~repro.solvers.cache.solution_cache_key`) onto the ring, so a given
``(model, policy)`` always lands on the same worker — which is what keeps the
per-shard :class:`~repro.solvers.SolutionCache` hot and per-shard
single-flight coalescing exact: 100 identical concurrent requests arriving on
100 connections still cost one solve, because they all route to one shard.

The pieces, front side:

:class:`ConsistentHashRing`
    ``replicas`` virtual nodes per shard on a 64-bit ring built from
    :func:`stable_key_digest` — deterministic across processes and runs
    (``hash()`` is salted per process and would scatter a key's shard
    assignment across restarts).

:class:`_WorkerHandle` / the pool
    One spawned worker process per shard (see :mod:`.worker`), a pipe to it,
    a sender thread draining an outbox queue and a reader thread delivering
    answers back onto the event loop.  Worker processes are spawned and
    joined in *sync* helpers invoked off-loop — creating multiprocessing
    primitives on the event loop blocks it for the whole fork/exec handshake
    (lint rule RPR009).

Tiered load shedding
    Admission happens on the front, before any pipe traffic: the *worse* of
    queue occupancy (global pending over total capacity,
    ``workers × max_queue``) and the SLO tracker's measured latency pressure
    (:meth:`repro.obs.slo.SloTracker.pressure`) is compared against per-tier
    thresholds, shedding the cheapest-to-recompute query kinds first —
    steady-state solves are milliseconds to redo, transient grids are not.
    A shed request gets a structured 429 naming the target ``shard`` and the
    ``shed_tier``.  A full individual shard sheds likewise even when the
    pool as a whole has room.

Crash recovery
    A worker EOF (crash, kill, OOM) fails that shard's in-flight requests
    with the retryable ``worker-crashed`` error, then respawns the worker
    under the same shard id — the ring never changes, so "rehash" is the
    identity and no other shard's keys move.  A periodic health task backs up
    the EOF signal.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import multiprocessing
import queue
import threading
import time
from typing import TYPE_CHECKING

from ..obs import MetricsRegistry, Span, TraceBuilder
from ..solvers import SolutionCache
from ..solvers.cache import solution_cache_key
from . import protocol
from .errors import (
    BadRequestError,
    LoadShedError,
    NotFoundError,
    ServiceClosedError,
    ServiceError,
    SolveFailedError,
    WorkerCrashedError,
)
from .scheduler import DEFAULT_SHED_THRESHOLDS, SHED_TIER_ORDER, shed_decision
from .server import ServiceConfig, SolverService, merge_shard_stats_metrics
from .worker import ShardWorkerConfig, worker_main

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from .protocol import SolveRequest

__all__ = [
    "ConsistentHashRing",
    "DEFAULT_SHED_THRESHOLDS",
    "SHED_TIER_ORDER",
    "ShardedService",
    "shed_decision",
    "stable_key_digest",
]

#: Seconds the front waits for the whole pool's ready handshake.
_STARTUP_TIMEOUT = 120.0

#: Seconds between liveness sweeps over the worker processes.
_HEALTH_INTERVAL = 1.0

#: Seconds a crashed worker's waiters are told to back off before retrying.
_RESTART_RETRY_AFTER = 0.5


def stable_key_digest(key: object) -> int:
    """A process-independent 64-bit position for a cache key on the ring.

    Builtin ``hash()`` is salted per process (``PYTHONHASHSEED``), so two
    front processes — or one front before and after a restart — would
    disagree about every key's shard.  Hashing the key's ``repr`` with
    blake2b is deterministic everywhere; cache keys are value-typed trees
    (numbers, strings, tuples, frozen policies) whose reprs are canonical.
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """A consistent-hash ring mapping solution keys onto shard ids.

    Each shard owns ``replicas`` virtual nodes, which evens out the key share
    per shard (single-point rings routinely give one shard several times its
    fair share).  Lookup is a binary search over the sorted vnode positions:
    a key belongs to the first vnode clockwise from its digest.
    """

    def __init__(self, shards: int, *, replicas: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                token = f"shard:{shard}:vnode:{replica}".encode()
                position = int.from_bytes(
                    hashlib.blake2b(token, digest_size=8).digest(), "big"
                )
                points.append((position, shard))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [owner for _, owner in points]

    def shard_for(self, key: object) -> int:
        """The shard owning ``key`` (same key → same shard, always)."""
        index = bisect.bisect_right(self._positions, stable_key_digest(key))
        if index == len(self._positions):
            index = 0
        return self._owners[index]


class _RemoteShardError(ServiceError):
    """A structured failure reported by a shard worker, relayed verbatim.

    The worker serialises the original :class:`ServiceError`'s stable fields
    (code, message, status, retry hint); this shim carries them across the
    pipe so the HTTP layer renders exactly what a single-process service
    would have sent.  ``code``/``http_status`` are instance attributes on
    purpose: they mirror whatever the worker pinned, they are not a new code.
    """

    def __init__(
        self, code: str, message: str, http_status: int, retry_after: float | None
    ) -> None:
        super().__init__(message, retry_after=retry_after)
        self.code = code
        self.http_status = http_status


def _remote_error(payload: dict) -> ServiceError:
    return _RemoteShardError(
        str(payload.get("code", "internal-error")),
        str(payload.get("message", "shard worker error")),
        int(payload.get("http_status", 500)),
        payload.get("retry_after"),
    )


class _WorkerHandle:
    """Front-side state of one shard worker (process, pipe, pending futures)."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn: Connection | None = None
        self.send_queue: queue.Queue[tuple | None] | None = None
        #: In-flight /solve futures — the load that admission and /healthz
        #: count.  Control-plane stats/spill queries live in their own map so
        #: observability polling never pushes real traffic over a shed
        #: threshold.
        self.pending: dict[int, asyncio.Future] = {}
        self.control_pending: dict[int, asyncio.Future] = {}
        self.ready: asyncio.Event | None = None
        self.state = "starting"
        self.generation = 0
        self.restarts = 0
        self.routed_total = 0


def _send_loop(conn: "Connection", send_queue: "queue.Queue[tuple | None]") -> None:
    """Sender thread: drain one worker's outbox onto its pipe."""
    while True:
        message = send_queue.get()
        if message is None:
            return
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # pragma: no cover - worker died
            return


class ShardedService(SolverService):
    """The sharded front: existing HTTP surface, worker-process backends.

    Construction is cheap; ``start()`` spawns the pool (one worker per
    ``config.workers``), waits for every shard's ready handshake, then binds
    the listening socket — the service never accepts a request it has no
    backend for.  ``stop()`` reverses the order and shuts workers down
    gracefully, which spills their caches when ``cache_dir`` is set.
    """

    def __init__(
        self, config: ServiceConfig | None = None, *, cache: SolutionCache | None = None
    ) -> None:
        super().__init__(config, cache=cache)
        self._ring = ConsistentHashRing(self.config.workers)
        self._handles = [_WorkerHandle(shard) for shard in range(self.config.workers)]
        self._request_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._health_task: asyncio.Task | None = None
        self._respawn_tasks: set[asyncio.Task] = set()
        self._stopping = False
        self._shed_total = 0
        self._shed_by_tier: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = False
        for handle in self._handles:
            handle.ready = asyncio.Event()
        await self._loop.run_in_executor(None, self._start_pool)
        waits = [handle.ready.wait() for handle in self._handles if handle.ready is not None]
        try:
            await asyncio.wait_for(asyncio.gather(*waits), timeout=_STARTUP_TIMEOUT)
        except TimeoutError:
            await self._loop.run_in_executor(None, self._stop_pool)
            raise RuntimeError(
                f"shard workers failed the ready handshake within {_STARTUP_TIMEOUT:g}s"
            ) from None
        await super().start()
        self._health_task = self._loop.create_task(self._health_loop())

    async def stop(self) -> None:
        self._stopping = True
        if self._health_task is not None:
            self._health_task.cancel()
            await asyncio.gather(self._health_task, return_exceptions=True)
            self._health_task = None
        if self._respawn_tasks:
            for task in tuple(self._respawn_tasks):
                task.cancel()
            await asyncio.gather(*tuple(self._respawn_tasks), return_exceptions=True)
        await super().stop()
        if self._loop is not None:
            await self._loop.run_in_executor(None, self._stop_pool)
        shutdown = ServiceClosedError("the service shut down before answering")
        for handle in self._handles:
            self._fail_pending(handle, shutdown)

    # -- pool management (sync; always invoked off-loop) -------------------

    def _start_pool(self) -> None:
        for handle in self._handles:
            self._spawn_worker(handle)

    def _spawn_worker(self, handle: _WorkerHandle) -> None:
        """Spawn (or respawn) one shard worker and its pipe-bridging threads.

        Spawn, not fork: the front runs an event loop and threads, which fork
        would duplicate into a corrupt child.  The child connection is closed
        on the parent side so a worker death surfaces as EOF on the reader.
        """
        previous = handle.process
        if previous is not None:
            # Reap the dead generation before replacing it: nobody else joins
            # a crashed worker, and unreaped children pile up as zombies for
            # the life of the front.
            previous.join(timeout=5.0)
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe()
        worker_config = ShardWorkerConfig(
            shard=handle.shard,
            batch_window=self.config.batch_window,
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
            cache_maxsize=self.config.cache_maxsize,
            cache_dir=self.config.cache_dir,
            spill_interval=self.config.spill_interval,
            trace_ring=self.config.trace_ring,
            slow_request_seconds=self.config.slow_request_seconds,
            trace_exemplar_interval=self.config.trace_exemplar_interval,
        )
        process = context.Process(
            target=worker_main,
            args=(worker_config, child_conn),
            name=f"repro-shard-{handle.shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.generation += 1
        handle.process = process
        handle.conn = parent_conn
        handle.send_queue = queue.Queue()
        handle.state = "starting"
        threading.Thread(
            target=_send_loop,
            args=(parent_conn, handle.send_queue),
            name=f"shard-{handle.shard}-send",
            daemon=True,
        ).start()
        threading.Thread(
            target=self._read_loop,
            args=(handle, parent_conn, handle.generation),
            name=f"shard-{handle.shard}-recv",
            daemon=True,
        ).start()

    def _stop_pool(self) -> None:
        for handle in self._handles:
            if handle.send_queue is not None:
                handle.send_queue.put(("shutdown",))
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=15.0)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5.0)
            handle.state = "stopped"
            if handle.send_queue is not None:
                handle.send_queue.put(None)

    def _read_loop(self, handle: _WorkerHandle, conn: "Connection", generation: int) -> None:
        """Reader thread: deliver one worker's answers onto the event loop."""
        loop = self._loop
        if loop is None:  # pragma: no cover - spawn before start()
            return
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            try:
                loop.call_soon_threadsafe(self._on_worker_message, handle, generation, message)
            except RuntimeError:  # pragma: no cover - loop already closed
                return
        try:
            loop.call_soon_threadsafe(self._on_worker_down, handle, generation)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    # -- loop-side worker events -------------------------------------------

    def _on_worker_message(self, handle: _WorkerHandle, generation: int, message: object) -> None:
        if generation != handle.generation:
            return  # a stale reader thread from before a respawn
        if not isinstance(message, tuple) or not message:
            return
        if message[0] == "ready":
            handle.state = "ready"
            if handle.ready is not None:
                handle.ready.set()
            return
        if len(message) != 3:
            return
        request_id, kind, payload = message
        future = handle.pending.pop(request_id, None)
        if future is None:
            future = handle.control_pending.pop(request_id, None)
        if future is None or future.done():
            return
        if kind == "error":
            future.set_exception(_remote_error(payload))
        else:
            future.set_result((kind, payload))

    def _on_worker_down(self, handle: _WorkerHandle, generation: int) -> None:
        if generation != handle.generation or self._stopping:
            return
        # Retire the dead generation here, on the loop: the health sweep and
        # the reader thread's EOF can both report the same death, and the
        # _spawn_worker bump happens later in an executor — too late to stop
        # the second report from scheduling a second respawn.
        handle.generation += 1
        handle.state = "dead"
        handle.restarts += 1
        self._fail_pending(
            handle,
            WorkerCrashedError(
                f"the worker process of shard {handle.shard} died mid-request and is "
                "being restarted; the request is safe to retry",
                shard=handle.shard,
                retry_after=_RESTART_RETRY_AFTER,
            ),
        )
        if self._loop is not None:
            task = self._loop.create_task(self._respawn(handle))
            self._respawn_tasks.add(task)
            task.add_done_callback(self._respawn_tasks.discard)

    def _fail_pending(self, handle: _WorkerHandle, error: ServiceError) -> None:
        pending = list(handle.pending.values()) + list(handle.control_pending.values())
        handle.pending.clear()
        handle.control_pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)
                # Mark retrieved: a waiter that already gave up would
                # otherwise trigger "exception was never retrieved" noise.
                future.exception()

    async def _respawn(self, handle: _WorkerHandle) -> None:
        """Restart a crashed worker under its original shard id.

        The ring is a function of the shard *count*, which never changes, so
        the replacement worker owns exactly the key range its predecessor did
        — restart-and-rehash is the identity rehash, and no other shard's
        cache locality is disturbed.  The replacement reloads the shard's
        cache snapshot on startup when ``cache_dir`` is set.
        """
        if self._loop is None or self._stopping:
            return
        handle.ready = asyncio.Event()
        await self._loop.run_in_executor(None, self._spawn_worker, handle)

    async def _health_loop(self) -> None:
        """Back up the pipe-EOF crash signal with a periodic liveness sweep."""
        while True:
            await asyncio.sleep(_HEALTH_INTERVAL)
            for handle in self._handles:
                process = handle.process
                if handle.state == "ready" and process is not None and not process.is_alive():
                    self._on_worker_down(handle, handle.generation)

    # -- request path ------------------------------------------------------

    async def _solve(
        self, body: bytes, trace: TraceBuilder
    ) -> tuple[int, dict, dict[str, str]]:
        started = time.perf_counter()
        try:
            if not body:
                raise BadRequestError("POST /solve requires a JSON body")
            admission_started = time.perf_counter()
            request = protocol.parse_solve_request(protocol.parse_body(body))
            key = solution_cache_key(request.model, request.policy)  # type: ignore[arg-type]
            shard = self._ring.shard_for(key)
            handle = self._handles[shard]
            self._admit(request.query, shard, handle)
            trace.add(
                "admission",
                admission_started,
                time.perf_counter(),
                shard=shard,
                query=request.query,
            )
            handle.routed_total += 1
            result = await self._submit(handle, request, trace)
            self.slo.observe_solve_latency(time.perf_counter() - started)
            if result["solver"] is None:
                raise SolveFailedError(result["error"] or "no solver succeeded")
        except ServiceError as error:
            self.traces.record(trace.finish(error.code))
            raise
        self.traces.record(trace.finish("ok"))
        payload = {
            "status": "ok",
            "trace_id": trace.trace_id,
            "query": request.query,
            "shard": shard,
            "solver": result["solver"],
            "stable": result["stable"],
            "metrics": dict(result["metrics"]),
            "cached": result["cached"],
            "coalesced": result["coalesced"],
            "elapsed_ms": round((time.perf_counter() - started) * 1e3, 3),
        }
        return 200, payload, {"X-Trace-Id": trace.trace_id}

    def _admit(self, query: str, shard: int, handle: _WorkerHandle) -> None:
        """Front-side admission: worker availability, then tiered shedding."""
        if handle.state != "ready":
            raise WorkerCrashedError(
                f"the worker process of shard {shard} is restarting; retry shortly",
                shard=shard,
                retry_after=_RESTART_RETRY_AFTER,
            )
        pending_total = sum(len(h.pending) for h in self._handles)
        capacity = self.config.workers * self.config.max_queue
        tier = shed_decision(
            query,
            pending_total,
            capacity,
            self.config.shed_thresholds,
            latency_pressure=self.slo.pressure(),
        )
        if tier is None and len(handle.pending) >= self.config.max_queue:
            # The pool has room overall but this shard's queue is full: a hot
            # key range must not be allowed to monopolise the global budget.
            tier = query
        if tier is not None:
            self._shed_total += 1
            self._shed_by_tier[tier] = self._shed_by_tier.get(tier, 0) + 1
            retry_after = round(0.1 * (1.0 + pending_total / max(1, capacity)), 3)
            raise LoadShedError(
                f"overloaded: shedding {tier!r} requests "
                f"({pending_total}/{capacity} pending); retry shortly",
                shard=shard,
                tier=tier,
                retry_after=retry_after,
            )

    async def _submit(
        self, handle: _WorkerHandle, request: "SolveRequest", trace: TraceBuilder
    ) -> dict:
        request_id = next(self._request_ids)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        handle.pending[request_id] = future
        if handle.send_queue is None:  # pragma: no cover - defensive
            handle.pending.pop(request_id, None)
            raise ServiceClosedError("the shard pool is not running")
        sent_at = time.perf_counter()
        handle.send_queue.put(
            (
                "solve",
                request_id,
                request.model,
                request.policy,
                request.deadline,
                trace.trace_id,
            )
        )
        _kind, payload = await future
        result = dict(payload)
        # The worker's spans are offsets from *its* trace start; perf_counter
        # is not comparable across processes, so re-base them by the front's
        # pipe-send instant — exact durations, offsets off by one pipe hop.
        worker_trace = result.pop("trace", None)
        if isinstance(worker_trace, dict):
            shift_ms = trace.offset_ms(sent_at)
            spans = worker_trace.get("spans")
            if isinstance(spans, list):
                for span_payload in spans:
                    if isinstance(span_payload, dict):
                        span = Span.from_dict(span_payload)
                        trace.add_span(span, shift_ms=shift_ms)
                        if span.name == "queue-wait":
                            # The worker-measured wait is the SLO tracker's
                            # queue-wait signal on the sharded tier (durations
                            # are exact; only offsets are approximate).
                            self.slo.observe_queue_wait(span.duration_ms / 1e3)
        return result

    async def _query_worker(
        self, handle: _WorkerHandle, kind: str, *args: object, timeout: float = 5.0
    ) -> dict | None:
        """Ask one worker a control-plane question (``stats``/``spill``/
        ``trace``/``traces``); ``None`` when the worker is unavailable."""
        if handle.state != "ready" or handle.send_queue is None:
            return None
        request_id = next(self._request_ids)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        handle.control_pending[request_id] = future
        handle.send_queue.put((kind, request_id, *args))
        try:
            answer = await asyncio.wait_for(asyncio.shield(future), timeout)
        except (TimeoutError, ServiceError):
            handle.control_pending.pop(request_id, None)
            return None
        _kind, payload = answer
        return dict(payload) if isinstance(payload, dict) else {"value": payload}

    # -- observability -----------------------------------------------------

    async def _trace_payload(self, trace_id: str) -> dict:
        """``GET /traces/<id>`` on the sharded tier: front ring + worker fan-out.

        The front's retained copy is authoritative — it already carries the
        worker's spans re-based onto the front clock.  The fan-out over the
        control pipe merges any worker-retained spans the front copy lacks
        (deduplicated by span id) and covers traces the front ring has
        already evicted while a worker ring still holds them; a worker-only
        trace keeps its worker-relative offsets (durations are exact).
        """
        found = self.traces.find(trace_id)
        replies = await asyncio.gather(
            *(self._query_worker(handle, "trace", trace_id) for handle in self._handles)
        )
        worker_payloads = [
            reply["trace"]
            for reply in replies
            if reply is not None and isinstance(reply.get("trace"), dict)
        ]
        if found is not None:
            payload = found.to_dict()
            spans = [span.to_dict() for span in found.spans]
            seen: set[object] = {span.span_id for span in found.spans}
            for worker_payload in worker_payloads:
                worker_spans = worker_payload.get("spans")
                if not isinstance(worker_spans, list):
                    continue
                for span_payload in worker_spans:
                    if isinstance(span_payload, dict):
                        span_id = span_payload.get("span_id")
                        if span_id not in seen:
                            seen.add(span_id)
                            spans.append(span_payload)
            payload["spans"] = spans
            return {"status": "ok", "trace": payload}
        if worker_payloads:
            return {"status": "ok", "trace": worker_payloads[0]}
        raise NotFoundError(
            f"no retained trace {trace_id!r} on the front or any shard worker; "
            f"it may have fallen off the rings (capacity {self.traces.capacity})"
        )

    async def _traces_payload(self, *, slow: bool, limit: int) -> dict:
        """``GET /traces`` on the sharded tier: front listing + worker fan-out.

        Front-retained traces win the per-id deduplication (their spans are
        merged and re-based); worker-only traces fill in behind them.  The
        combined listing is sorted newest-first and bounded by ``limit``.
        """
        local = self.traces.query(slow=slow, limit=limit)
        replies = await asyncio.gather(
            *(
                self._query_worker(handle, "traces", {"slow": slow, "limit": limit})
                for handle in self._handles
            )
        )
        combined: list[dict] = []
        seen: set[object] = set()
        for retained in local:
            seen.add(retained.trace_id)
            combined.append(retained.to_dict())
        for reply in replies:
            if reply is None:
                continue
            worker_traces = reply.get("traces")
            if not isinstance(worker_traces, list):
                continue
            for trace_payload in worker_traces:
                if isinstance(trace_payload, dict):
                    trace_id = trace_payload.get("trace_id")
                    if trace_id not in seen:
                        seen.add(trace_id)
                        combined.append(trace_payload)

        def _started_at(trace_payload: dict) -> float:
            value = trace_payload.get("started_at")
            return float(value) if isinstance(value, (int, float)) else 0.0

        combined.sort(key=_started_at, reverse=True)
        combined = combined[:limit]
        return {
            "status": "ok",
            "count": len(combined),
            "slow": slow,
            "traces": combined,
        }

    async def _healthz_payload(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - (self._started_monotonic or 0.0), 3),
            "workers": self.config.workers,
            "workers_ready": sum(1 for handle in self._handles if handle.state == "ready"),
            "queue_depth": sum(len(handle.pending) for handle in self._handles),
            "max_queue": self.config.workers * self.config.max_queue,
        }

    async def _stats_payload(self) -> dict:
        worker_stats = await asyncio.gather(
            *(self._query_worker(handle, "stats") for handle in self._handles)
        )
        totals = {
            "requests_total": 0,
            "cache_hits_total": 0,
            "coalesced_total": 0,
            "scheduled_total": 0,
            "batches_total": 0,
            "rejected_total": 0,
            "deadline_exceeded_total": 0,
            "solves": 0,
            "cache_size": 0,
            "cache_spills": 0,
            "cache_spilled_entries": 0,
            "cache_loads": 0,
            "cache_loaded_entries": 0,
        }
        shards: list[dict] = []
        for handle, stats in zip(self._handles, worker_stats):
            entry: dict = {
                "shard": handle.shard,
                "state": handle.state,
                "restarts": handle.restarts,
                "routed_total": handle.routed_total,
                "pending": len(handle.pending),
            }
            if stats is not None:
                stats = dict(stats)
                # The registry dump rides the same pipe reply but belongs to
                # /metrics; /stats keeps its established JSON shape.
                stats.pop("metrics", None)
                entry["scheduler"] = stats
                for counter in (
                    "requests_total",
                    "cache_hits_total",
                    "coalesced_total",
                    "scheduled_total",
                    "batches_total",
                    "rejected_total",
                    "deadline_exceeded_total",
                ):
                    totals[counter] += int(stats.get(counter, 0))
                cache_stats = stats.get("cache", {})
                totals["solves"] += int(cache_stats.get("solves", 0))
                totals["cache_size"] += int(cache_stats.get("size", 0))
                totals["cache_spills"] += int(cache_stats.get("spills", 0))
                totals["cache_spilled_entries"] += int(cache_stats.get("spilled_entries", 0))
                totals["cache_loads"] += int(cache_stats.get("loads", 0))
                totals["cache_loaded_entries"] += int(cache_stats.get("loaded_entries", 0))
            shards.append(entry)
        return {
            "status": "ok",
            "started_at": self._started_wallclock,
            "uptime_seconds": round(time.monotonic() - (self._started_monotonic or 0.0), 3),
            "workers": self.config.workers,
            "responses_total": self._responses_total,
            "errors_total": self._errors_total,
            "errors_by_code": dict(self._errors_by_code),
            "shedding": {
                "shed_total": self._shed_total,
                "by_tier": dict(self._shed_by_tier),
                "tier_order": list(SHED_TIER_ORDER),
                "thresholds": list(self.config.shed_thresholds),
                "capacity": self.config.workers * self.config.max_queue,
            },
            "shards": shards,
            "totals": totals,
            "slo": self.slo.snapshot(),
        }

    async def _metrics_payload(self) -> str:
        """The sharded ``GET /metrics``: every shard's registry, merged exactly.

        Each worker ships its scheduler's histogram registry inside its stats
        reply; bucket-wise summation makes the aggregated histograms identical
        to a single process having recorded every observation.  Shard counters
        are derived from the same stats integers ``/stats`` totals, plus the
        pool's own series (worker restarts, readiness, shed tiers).
        """
        worker_stats = await asyncio.gather(
            *(self._query_worker(handle, "stats") for handle in self._handles)
        )
        registry = MetricsRegistry()
        for handle, stats in zip(self._handles, worker_stats):
            registry.counter(
                "repro_worker_restarts_total",
                "Times this shard's worker process was respawned.",
                labels={"shard": str(handle.shard)},
            ).inc(float(handle.restarts))
            registry.counter(
                "repro_routed_total",
                "Requests routed to this shard by the ring.",
                labels={"shard": str(handle.shard)},
            ).inc(float(handle.routed_total))
            if stats is None:
                continue
            metrics_payload = stats.get("metrics")
            if isinstance(metrics_payload, dict):
                registry.merge_dict(metrics_payload)
            merge_shard_stats_metrics(registry, handle.shard, stats)
        registry.gauge(
            "repro_workers_ready", "Shard workers currently in the ready state."
        ).set(float(sum(1 for handle in self._handles if handle.state == "ready")))
        registry.counter("repro_shed_total", "Requests shed by tiered admission.").inc(
            float(self._shed_total)
        )
        for tier, count in self._shed_by_tier.items():
            registry.counter(
                "repro_shed_by_tier_total",
                "Requests shed by tiered admission, by query tier.",
                labels={"tier": tier},
            ).inc(float(count))
        self._front_metrics(registry)
        return registry.render()
