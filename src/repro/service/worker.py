"""The shard worker: one process owning one slice of the key space.

Each worker spawned by :class:`~repro.service.sharding.ShardPool` runs
:func:`worker_main`: a private asyncio loop hosting its own
:class:`~repro.service.scheduler.BatchScheduler` and per-shard
:class:`~repro.solvers.SolutionCache`.  Because the front process routes
every solution key to exactly one shard, single-flight coalescing and LRU
locality keep working *per shard* — 100 identical concurrent requests still
cost one solve, no matter which front connection carried them.

The front talks to workers over one :class:`multiprocessing.connection.Connection`
per worker.  Messages front → worker::

    ("solve", request_id, model, policy, deadline, trace_id)
    ("stats", request_id)       # scheduler + cache counters for this shard
    ("spill", request_id)       # snapshot the shard cache to disk now
    ("trace", request_id, trace_id)   # look one trace up in the shard's ring
    ("traces", request_id, params)    # list retained traces ({"slow","limit"})
    ("shutdown",)               # graceful: spill, drain, exit

(the trailing ``trace_id`` is optional — a worker unpacks tolerantly, so an
older front sending 5-tuples keeps working) and worker → front::

    ("ready", shard)                      # startup handshake
    (request_id, "ok", result_dict)       # includes a "trace" span payload
    (request_id, "error", error_dict)     # structured ServiceError fields
    (request_id, "stats", stats_dict)     # includes a "metrics" registry dump
    (request_id, "spilled", entry_count)
    (request_id, "trace", {"trace": ...}) # the retained trace dict, or None
    (request_id, "traces", {"traces": [...]})

Blocking pipe I/O never touches the event loop: a reader thread feeds
incoming messages to the loop via ``call_soon_threadsafe`` and a writer
thread drains an outbox queue, mirroring how the front side bridges the same
pipes.  ``worker_main`` also runs happily inside a *thread* (the coverage
harness does this), so signal handling is installed only when the worker is
a real process's main thread.

Cache persistence is per shard: with ``cache_dir`` set, the worker loads
``shard-<i>.json`` on startup (a corrupt snapshot serves cold rather than
crashing), spills every ``spill_interval`` seconds, and spills once more on
graceful shutdown — a restarted worker answers yesterday's popular queries
from memory without re-solving.
"""

from __future__ import annotations

import asyncio
import queue
import signal
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import CachePersistenceError
from ..obs import TraceBuilder, TraceRecorder
from ..solvers import SolutionCache
from .errors import ServiceError
from .scheduler import (
    DEFAULT_BATCH_WINDOW,
    DEFAULT_CACHE_MAXSIZE,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    BatchScheduler,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

#: Default seconds between periodic shard-cache spills.
DEFAULT_SPILL_INTERVAL = 30.0


@dataclass(frozen=True)
class ShardWorkerConfig:
    """Everything one shard worker needs to run (picklable for spawn)."""

    shard: int
    batch_window: float = DEFAULT_BATCH_WINDOW
    max_queue: int = DEFAULT_MAX_QUEUE
    max_batch: int = DEFAULT_MAX_BATCH
    cache_maxsize: int = DEFAULT_CACHE_MAXSIZE
    cache_dir: str | None = None
    spill_interval: float = DEFAULT_SPILL_INTERVAL
    trace_ring: int = 256
    slow_request_seconds: float = 1.0
    trace_exemplar_interval: int = 32


def shard_cache_path(cache_dir: str | Path, shard: int) -> Path:
    """The snapshot file of one shard's cache inside ``cache_dir``."""
    return Path(cache_dir) / f"shard-{shard}.json"


def worker_main(config: ShardWorkerConfig, conn: "Connection") -> None:
    """Run one shard worker until told to shut down (process entry point)."""
    asyncio.run(_worker_async(config, conn))


async def _worker_async(config: ShardWorkerConfig, conn: "Connection") -> None:
    loop = asyncio.get_running_loop()
    cache = SolutionCache(maxsize=config.cache_maxsize)
    snapshot: Path | None = None
    if config.cache_dir is not None:
        snapshot = shard_cache_path(config.cache_dir, config.shard)
        try:
            cache.load(snapshot)
        except CachePersistenceError as exc:
            # A torn or stale snapshot must not keep the shard down; serving
            # cold is strictly better than not serving.
            warnings.warn(
                f"shard {config.shard} serves cold: {exc}", RuntimeWarning, stacklevel=1
            )
    scheduler = BatchScheduler(
        batch_window=config.batch_window,
        max_queue=config.max_queue,
        max_batch=config.max_batch,
        workers=1,
        cache=cache,
        shard=config.shard,
    )
    # The worker keeps its own trace rings so the front can fan ``/traces``
    # lookups out over the control pipe.  No logger: the front records the
    # full merged trace and owns slow-request log emission.
    recorder = TraceRecorder(
        config.trace_ring,
        slow_threshold_seconds=config.slow_request_seconds,
        exemplar_interval=config.trace_exemplar_interval,
        logger=None,
    )

    inbox: asyncio.Queue[tuple] = asyncio.Queue()
    outbox: queue.Queue[tuple | None] = queue.Queue()
    answer_tasks: set[asyncio.Task] = set()

    sigterm_installed = False
    if threading.current_thread() is threading.main_thread():
        # A worker process dies gracefully on SIGTERM: the handler enqueues
        # the same shutdown message the front would send onto the worker's
        # *own* inbox, so the cache still spills.  Inside a thread (the
        # coverage harness) signals belong to the host process and are left
        # alone.
        try:
            loop.add_signal_handler(signal.SIGTERM, inbox.put_nowait, ("shutdown",))
            sigterm_installed = True
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
            signal.signal(
                signal.SIGTERM,
                lambda _signum, _frame: loop.call_soon_threadsafe(
                    inbox.put_nowait, ("shutdown",)
                ),
            )

    def _read_loop() -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = ("shutdown",)
            if not isinstance(message, tuple) or not message:
                continue
            try:
                loop.call_soon_threadsafe(inbox.put_nowait, message)
            except RuntimeError:  # pragma: no cover - loop already closed
                return
            if message[0] == "shutdown":
                return

    def _write_loop() -> None:
        while True:
            message = outbox.get()
            if message is None:
                return
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):  # pragma: no cover - front died
                return

    reader = threading.Thread(target=_read_loop, name=f"shard-{config.shard}-read", daemon=True)
    writer = threading.Thread(target=_write_loop, name=f"shard-{config.shard}-write", daemon=True)
    reader.start()
    writer.start()

    async def _answer(
        request_id: int,
        model: object,
        policy: object,
        deadline: float | None,
        trace_id: str | None,
    ) -> None:
        # The worker builds its own span set relative to its own clock; the
        # front re-bases the offsets by the pipe-send instant on its side.
        trace = TraceBuilder(trace_id=trace_id)
        try:
            result = await scheduler.submit(
                model, policy, deadline=deadline, trace=trace  # type: ignore[arg-type]
            )
        except asyncio.CancelledError:
            raise
        except ServiceError as error:
            recorder.record(trace.finish(error.code))
            outbox.put(
                (
                    request_id,
                    "error",
                    {
                        "code": error.code,
                        "message": str(error),
                        "http_status": error.http_status,
                        "retry_after": error.retry_after,
                    },
                )
            )
            return
        except Exception as error:  # noqa: BLE001 - reported, never a hung waiter
            recorder.record(trace.finish("internal-error"))
            outbox.put(
                (
                    request_id,
                    "error",
                    {
                        "code": "internal-error",
                        "message": f"{type(error).__name__}: {error}",
                        "http_status": 500,
                        "retry_after": None,
                    },
                )
            )
            return
        outcome = result.outcome
        recorder.record(trace.finish("ok"))
        outbox.put(
            (
                request_id,
                "ok",
                {
                    "solver": outcome.solver,
                    "stable": outcome.stable,
                    "metrics": dict(outcome.metrics),
                    "error": outcome.error,
                    "cached": result.cached,
                    "coalesced": result.coalesced,
                    "trace": {"spans": [span.to_dict() for span in trace.spans]},
                },
            )
        )

    def _spill_now() -> int:
        if snapshot is None:
            return 0
        return cache.spill(snapshot)

    async def _periodic_spill() -> None:
        while True:
            await asyncio.sleep(config.spill_interval)
            await loop.run_in_executor(None, _spill_now)

    spill_task: asyncio.Task | None = None
    if snapshot is not None and config.spill_interval > 0:
        spill_task = loop.create_task(_periodic_spill())

    outbox.put(("ready", config.shard))
    try:
        while True:
            message = await inbox.get()
            kind = message[0]
            if kind == "shutdown":
                break
            if kind == "solve":
                _, request_id, model, policy, deadline = message[:5]
                trace_id = message[5] if len(message) > 5 else None
                task = loop.create_task(
                    _answer(request_id, model, policy, deadline, trace_id)
                )
                answer_tasks.add(task)
                task.add_done_callback(answer_tasks.discard)
            elif kind == "stats":
                stats = dict(scheduler.stats())
                stats["shard"] = config.shard
                stats["metrics"] = scheduler.metrics_snapshot()
                outbox.put((message[1], "stats", stats))
            elif kind == "spill":
                count = await loop.run_in_executor(None, _spill_now)
                outbox.put((message[1], "spilled", count))
            elif kind == "trace" and len(message) > 2:
                found = recorder.find(str(message[2]))
                outbox.put(
                    (
                        message[1],
                        "trace",
                        {"trace": found.to_dict() if found is not None else None},
                    )
                )
            elif kind == "traces":
                params = message[2] if len(message) > 2 and isinstance(message[2], dict) else {}
                listed = recorder.query(
                    slow=bool(params.get("slow", False)),
                    limit=int(params.get("limit", 32)),
                )
                outbox.put(
                    (
                        message[1],
                        "traces",
                        {"traces": [retained.to_dict() for retained in listed]},
                    )
                )
            # Unknown message kinds are ignored: a newer front speaking to an
            # older worker must degrade, not crash the shard.
    finally:
        if sigterm_installed:
            loop.remove_signal_handler(signal.SIGTERM)
        if spill_task is not None:
            spill_task.cancel()
        if answer_tasks:
            await asyncio.gather(*tuple(answer_tasks), return_exceptions=True)
        await scheduler.close()
        await loop.run_in_executor(None, _spill_now)
        outbox.put(None)
        await loop.run_in_executor(None, writer.join)
