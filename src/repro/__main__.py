"""Allow running the command-line interface as ``python -m repro``."""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
