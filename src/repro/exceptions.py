"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so that callers can distinguish library failures from
programming errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A model or distribution parameter is invalid.

    Raised, for example, when a rate is non-positive, a probability vector
    does not sum to one, or the number of servers is not a positive integer.
    """


class UnstableQueueError(ReproError):
    """The queue described by the model parameters is not ergodic.

    The stability condition of the Palmer–Mitrani model (paper Eq. 11) is
    ``lambda / mu < N * eta / (xi + eta)``.  Solvers that require a steady
    state raise this exception when the condition is violated.
    """

    def __init__(self, offered_load: float, effective_servers: float) -> None:
        self.offered_load = float(offered_load)
        self.effective_servers = float(effective_servers)
        super().__init__(
            "queue is unstable: offered load {:.6g} is not smaller than the "
            "average number of operative servers {:.6g}".format(
                self.offered_load, self.effective_servers
            )
        )


class SolverError(ReproError):
    """A numerical solver failed to produce a valid solution.

    Examples include an eigenvalue count inside the unit disk that does not
    match the number of environment states, a singular boundary system, or a
    steady-state vector with significantly negative entries.
    """


class UnsupportedScenarioError(SolverError):
    """A solver backend cannot evaluate a :class:`~repro.scenarios.ScenarioModel`.

    The spectral expansion and the geometric approximation are derived for the
    paper's homogeneous server pool; heterogeneous server groups and limited
    repair crews fall outside their state-space structure, so those backends
    raise this exception (and solver fallback chains skip past them to the
    scenario-capable ``ctmc`` and ``simulate`` backends).
    """


class FittingError(ReproError):
    """A distribution-fitting procedure failed.

    Raised when moment matching has no feasible solution (for instance when
    the empirical squared coefficient of variation is below one, which no
    hyperexponential distribution can represent) or when an iterative fitting
    procedure fails to converge.
    """


class DataError(ReproError):
    """A breakdown trace or empirical data set is malformed."""


class CachePersistenceError(ReproError):
    """A solution-cache snapshot could not be read back.

    Raised by :meth:`repro.solvers.SolutionCache.load` when a spill file is
    corrupt or was written by an incompatible snapshot format version.  A
    *missing* file is not an error — a cold start is the normal first run.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was configured or driven incorrectly."""
