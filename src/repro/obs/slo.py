"""SLO tracking: rolling latency percentiles, error budgets, shed pressure.

The serving tier's admission control used to look at queue *depth* alone —
a lagging, capacity-shaped proxy for what clients actually feel.  This
module closes the loop: an :class:`SloTracker` ingests the same queue-wait
and solve-latency observations the live histograms record, maintains a
**rolling** view over a short wall-clock window (cumulative histograms never
forget, so a morning spike would poison the evening's p99), and reduces the
current state to a single *pressure* number in ``[0, ∞)``:

    ``pressure = max over objectives of (rolling p99 / target)``

``shed_decision`` treats pressure exactly like queue occupancy: at pressure
0.7 the cheapest tier sheds, at 1.0 everything does.  The service therefore
sheds on *measured latency*, not just depth — a slow backend trips the same
tiered response as a full queue.

The rolling window is a ring of periodic histogram snapshots.  Every
``tick_seconds`` the current cumulative counts are pushed; the rolling view
is the bucket-wise difference between *now* and the oldest retained
snapshot, which is again a valid histogram (the same exact-merge algebra
:mod:`repro.obs.metrics` relies on, run backwards).  Percentiles interpolate
within buckets exactly as :meth:`Histogram.percentile` does.

Error budgets are exact, not bucket-approximated: violations are counted at
observation time against the target, and surface as the monotone
``repro_slo_error_budget_total{slo=...}`` counter.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry

#: Default SLO targets, deliberately generous: CI's sustained-load gate runs
#: a saturated 4-shard service at p99 ≈ 0.2–0.5 s with zero shedding, and the
#: defaults must not turn that healthy baseline into a shed storm.  Operators
#: tighten them per deployment via ``--slo-queue-wait``/``--slo-solve-latency``.
DEFAULT_QUEUE_WAIT_TARGET_SECONDS = 2.0
DEFAULT_SOLVE_LATENCY_TARGET_SECONDS = 30.0


@dataclass(frozen=True)
class SloTargets:
    """The latency objectives admission control defends.

    A non-positive target disables that objective (it contributes neither
    pressure nor budget burn).
    """

    queue_wait_p99_seconds: float = DEFAULT_QUEUE_WAIT_TARGET_SECONDS
    solve_latency_p99_seconds: float = DEFAULT_SOLVE_LATENCY_TARGET_SECONDS


class _RollingHistogram:
    """A cumulative histogram plus a ring of periodic snapshots.

    ``observe`` feeds the cumulative histogram; ``rolling`` returns the
    difference between the current counts and the oldest snapshot within the
    window — i.e. a histogram of (approximately) the last
    ``window_seconds`` of observations.  Snapshot rotation happens lazily on
    access, so an idle tracker costs nothing.
    """

    __slots__ = ("_histogram", "_lock", "_snapshots", "_tick_seconds", "_last_tick", "_depth")

    def __init__(self, *, window_seconds: float, tick_seconds: float) -> None:
        self._histogram = Histogram(DEFAULT_LATENCY_BUCKETS)
        self._lock = threading.Lock()
        self._tick_seconds = max(0.05, float(tick_seconds))
        self._depth = max(1, round(float(window_seconds) / self._tick_seconds))
        self._snapshots: deque[Histogram] = deque(maxlen=self._depth + 1)
        self._last_tick = time.monotonic()

    def observe(self, seconds: float) -> None:
        self._histogram.observe(seconds)

    def _maybe_rotate(self, now: float) -> None:
        with self._lock:
            while now - self._last_tick >= self._tick_seconds:
                self._snapshots.append(self._histogram.snapshot())
                self._last_tick += self._tick_seconds
                if now - self._last_tick > self._depth * self._tick_seconds:
                    # Idle gap longer than the window: fast-forward instead of
                    # appending one stale snapshot per missed tick.
                    self._last_tick = now

    def rolling(self) -> Histogram:
        """The windowed histogram: observations since the window's start."""
        self._maybe_rotate(time.monotonic())
        current = self._histogram.snapshot()
        with self._lock:
            base = self._snapshots[0] if self._snapshots else None
        if base is None:
            return current
        delta = Histogram(current.bounds)
        delta.counts = [
            max(0, now_count - then_count)
            for now_count, then_count in zip(current.counts, base.counts)
        ]
        delta.total = max(0.0, current.total - base.total)
        delta.count = max(0, current.count - base.count)
        return delta

    @property
    def cumulative(self) -> Histogram:
        return self._histogram


class SloTracker:
    """Rolling p99 tracking and latency-pressure computation for admission.

    Feed it every request's queue wait and end-to-end latency (seconds);
    read back:

    * :meth:`queue_wait_p99` / :meth:`solve_latency_p99` — rolling p99 over
      the configured window;
    * :meth:`pressure` — ``max(p99 / target)`` across enabled objectives,
      the number :func:`~repro.service.scheduler.shed_decision` compares
      against the shed tiers' thresholds;
    * :meth:`error_budget` — exact counts of target violations so far;
    * :meth:`export_into` — the ``repro_slo_*`` gauge/counter families for
      ``/metrics``.

    Thread-safe; both the asyncio serving loop and the sharded front's pipe
    reader threads may observe concurrently.
    """

    def __init__(
        self,
        targets: SloTargets | None = None,
        *,
        window_seconds: float = 30.0,
        tick_seconds: float = 1.0,
    ) -> None:
        self.targets = targets if targets is not None else SloTargets()
        self._queue_wait = _RollingHistogram(
            window_seconds=window_seconds, tick_seconds=tick_seconds
        )
        self._solve_latency = _RollingHistogram(
            window_seconds=window_seconds, tick_seconds=tick_seconds
        )
        self._budget_lock = threading.Lock()
        self._budget = {"queue-wait": 0, "solve-latency": 0}

    @property
    def enabled(self) -> bool:
        """Whether any objective is active (a disabled tracker is inert)."""
        return (
            self.targets.queue_wait_p99_seconds > 0
            or self.targets.solve_latency_p99_seconds > 0
        )

    # -- feeding -----------------------------------------------------------

    def observe_queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(seconds)
        target = self.targets.queue_wait_p99_seconds
        if target > 0 and seconds > target:
            with self._budget_lock:
                self._budget["queue-wait"] += 1

    def observe_solve_latency(self, seconds: float) -> None:
        self._solve_latency.observe(seconds)
        target = self.targets.solve_latency_p99_seconds
        if target > 0 and seconds > target:
            with self._budget_lock:
                self._budget["solve-latency"] += 1

    # -- reading -----------------------------------------------------------

    def queue_wait_p99(self) -> float:
        return self._queue_wait.rolling().percentile(0.99)

    def solve_latency_p99(self) -> float:
        return self._solve_latency.rolling().percentile(0.99)

    def pressure(self) -> float:
        """``max(rolling p99 / target)`` over the enabled objectives.

        0.0 when disabled or before any observations; values at or above the
        shed thresholds (0.7/0.85/1.0 by default) engage tiered shedding even
        while queue depth sits below its own thresholds.
        """
        pressure = 0.0
        if self.targets.queue_wait_p99_seconds > 0:
            pressure = max(
                pressure, self.queue_wait_p99() / self.targets.queue_wait_p99_seconds
            )
        if self.targets.solve_latency_p99_seconds > 0:
            pressure = max(
                pressure,
                self.solve_latency_p99() / self.targets.solve_latency_p99_seconds,
            )
        return pressure

    def error_budget(self) -> dict[str, int]:
        """Exact violation counts per objective since the tracker started."""
        with self._budget_lock:
            return dict(self._budget)

    def snapshot(self) -> dict[str, object]:
        """A JSON-safe summary (served under ``/stats``)."""
        return {
            "queue_wait_p99_seconds": round(self.queue_wait_p99(), 6),
            "solve_latency_p99_seconds": round(self.solve_latency_p99(), 6),
            "queue_wait_target_seconds": self.targets.queue_wait_p99_seconds,
            "solve_latency_target_seconds": self.targets.solve_latency_p99_seconds,
            "pressure": round(self.pressure(), 6),
            "error_budget": self.error_budget(),
        }

    # -- exposition --------------------------------------------------------

    def export_into(self, registry: MetricsRegistry) -> None:
        """Write the ``repro_slo_*`` families into a ``/metrics`` registry."""
        registry.gauge(
            "repro_slo_queue_wait_p99_seconds",
            "Rolling p99 queue wait over the SLO window",
        ).set(self.queue_wait_p99())
        registry.gauge(
            "repro_slo_solve_latency_p99_seconds",
            "Rolling p99 end-to-end solve latency over the SLO window",
        ).set(self.solve_latency_p99())
        registry.gauge(
            "repro_slo_queue_wait_target_seconds", "Queue-wait p99 target (0 = disabled)"
        ).set(self.targets.queue_wait_p99_seconds)
        registry.gauge(
            "repro_slo_solve_latency_target_seconds",
            "Solve-latency p99 target (0 = disabled)",
        ).set(self.targets.solve_latency_p99_seconds)
        registry.gauge(
            "repro_slo_pressure",
            "max(rolling p99 / target); sheds engage at the tier thresholds",
        ).set(self.pressure())
        budget = self.error_budget()
        for objective in sorted(budget):
            registry.counter(
                "repro_slo_error_budget_total",
                "Observations that violated their SLO target",
                labels={"slo": objective},
            ).inc(budget[objective])
