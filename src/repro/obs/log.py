"""Structured logging: one line per event, text or JSON, with bound fields.

The serving stack logs through :class:`StructuredLogger` instead of bare
``print`` or the stdlib root logger (lint rule RPR010 pins this).  Every
record carries a timestamp, a level, the logger name, a short machine-greppable
``event`` and arbitrary key/value fields — ``repro serve --log-format json``
switches the rendering to JSON lines so a collector can parse them without
regexes, and traces are correlated by passing ``trace_id=...`` as a field
(what :meth:`bind` makes ergonomic).

The module-level configuration (:func:`configure_logging`) is read at *emit*
time, so loggers created before configuration — module-level singletons,
objects built before the CLI parsed ``--log-format`` — honour it without
re-plumbing.  The default sink is ``sys.stderr``, resolved per record so
test harnesses that rebind the stream still capture output.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass
from typing import IO

#: The accepted ``--log-format`` values.
LOG_FORMATS = ("text", "json")


@dataclass(frozen=True)
class LoggingConfig:
    """The process-wide logging configuration."""

    format: str = "text"
    stream: IO[str] | None = None  # None = sys.stderr at emit time


_lock = threading.Lock()
_config = LoggingConfig()


def configure_logging(format: str = "text", stream: IO[str] | None = None) -> None:
    """Set the process-wide log format (``text`` or ``json``) and sink."""
    if format not in LOG_FORMATS:
        raise ValueError(f"log format must be one of {LOG_FORMATS}, got {format!r}")
    global _config
    with _lock:
        _config = LoggingConfig(format=format, stream=stream)


def logging_config() -> LoggingConfig:
    """The current process-wide logging configuration."""
    with _lock:
        return _config


def _render_field(value: object) -> str:
    """A compact text-mode rendering: scalars bare, structures as JSON."""
    if isinstance(value, str):
        return value if " " not in value and '"' not in value else json.dumps(value)
    if isinstance(value, (int, float, bool)) or value is None:
        return str(value)
    return json.dumps(value, default=str, separators=(",", ":"))


class StructuredLogger:
    """A named logger emitting structured records through the global config.

    ``bind(**fields)`` returns a child logger whose records always carry the
    given fields — the idiom for trace-id correlation::

        log = get_logger("repro.service").bind(trace_id=trace.trace_id)
        log.info("request-admitted", shard=3)
    """

    __slots__ = ("name", "_bound")

    def __init__(self, name: str, bound: Mapping[str, object] | None = None) -> None:
        self.name = name
        self._bound: dict[str, object] = dict(bound or {})

    def bind(self, **fields: object) -> "StructuredLogger":
        """A child logger with ``fields`` merged into every record."""
        return StructuredLogger(self.name, {**self._bound, **fields})

    def debug(self, event: str, **fields: object) -> None:
        self._emit("DEBUG", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("INFO", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("WARNING", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("ERROR", event, fields)

    def _emit(self, level: str, event: str, fields: Mapping[str, object]) -> None:
        config = logging_config()
        now = time.time()
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(now))
        timestamp = f"{timestamp}.{int((now % 1.0) * 1e3):03d}Z"
        merged = {**self._bound, **fields}
        if config.format == "json":
            record: dict[str, object] = {
                "ts": timestamp,
                "level": level,
                "logger": self.name,
                "event": event,
                **merged,
            }
            line = json.dumps(record, default=str, separators=(",", ":"))
        else:
            rendered = " ".join(
                f"{name}={_render_field(value)}" for name, value in merged.items()
            )
            line = f"{timestamp} {level:<7} {self.name} {event}"
            if rendered:
                line = f"{line} {rendered}"
        stream = config.stream if config.stream is not None else sys.stderr
        try:
            stream.write(line + "\n")
            stream.flush()
        except (ValueError, OSError):  # pragma: no cover - closed sink at teardown
            pass


def get_logger(name: str, **bound: object) -> StructuredLogger:
    """A :class:`StructuredLogger` named ``name`` with optional bound fields."""
    return StructuredLogger(name, bound or None)
