"""The ``repro top`` dashboard: parse ``/metrics`` + ``/stats``, render a table.

Three cleanly separated layers so the interesting parts are unit-testable
without a terminal or a server:

:func:`parse_prometheus_text`
    A tolerant parser for the Prometheus 0.0.4 text exposition the service
    emits — every sample line becomes ``name → {label-set → value}``, with
    histogram ``_bucket`` series kept cumulative exactly as rendered, so
    :func:`histogram_quantile` can re-interpolate p50/p99 the same way
    :meth:`repro.obs.metrics.Histogram.percentile` computed them.

:class:`DashboardSnapshot` / :func:`summarize` / :func:`render_dashboard`
    A snapshot pairs one scrape of ``/metrics`` with one ``/stats`` payload
    and a caller-supplied monotonic stamp; ``summarize`` reduces one or two
    snapshots (rates need a predecessor) to a JSON-safe summary — per-shard
    RPS, p50/p99, queue depth, cache hit rate, shed tiers, SLO budget — and
    ``render_dashboard`` turns that summary into fixed-width lines.

:func:`run_dashboard`
    The live loop: stdlib ``curses`` (imported lazily so headless use never
    touches the terminal), redrawing every ``interval`` seconds until ``q``.

This module never prints and never reads the wall clock for durations; the
CLI owns I/O and supplies ``time.monotonic()`` stamps (lint rules RPR010,
RPR011).
"""

from __future__ import annotations

import math
import re
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    import curses

#: One parsed label set, sorted for canonical comparison.
LabelKey = tuple[tuple[str, str], ...]

#: ``name{labels} value`` — the only sample shape the service renders.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> dict[str, dict[LabelKey, float]]:
    """Parse a text exposition body into ``name → {label-set → value}``.

    Comment/``HELP``/``TYPE`` lines are skipped; unparseable sample lines are
    ignored rather than fatal (the dashboard must degrade when scraping a
    newer or older service).  Label values keep Prometheus escaping undone
    for the simple escapes the service emits.
    """
    parsed: dict[str, dict[LabelKey, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted(
                (name, raw.replace('\\"', '"').replace("\\\\", "\\").replace("\\n", "\n"))
                for name, raw in _LABEL_RE.findall(labels_text)
            )
        )
        parsed.setdefault(match.group("name"), {})[labels] = value
    return parsed


def metric_value(
    parsed: Mapping[str, Mapping[LabelKey, float]],
    name: str,
    match: Mapping[str, str] | None = None,
    default: float = 0.0,
) -> float:
    """The sum of a family's series whose labels are a superset of ``match``.

    With no ``match`` the whole family sums — the natural reading for
    counters split per shard.  ``default`` is returned when nothing matches
    (absent family or label set).
    """
    series = parsed.get(name)
    if not series:
        return default
    total = 0.0
    matched = False
    for key, value in series.items():
        labels = dict(key)
        if match is not None and any(labels.get(k) != v for k, v in match.items()):
            continue
        total += value
        matched = True
    return total if matched else default


def histogram_quantile(
    parsed: Mapping[str, Mapping[LabelKey, float]],
    name: str,
    quantile: float,
    match: Mapping[str, str] | None = None,
) -> float:
    """Re-interpolate a quantile from a family's cumulative ``_bucket`` lines.

    Matching label sets (e.g. all shards) are summed bucket-wise before
    interpolating, which is exactly the registry's exact-merge algebra — the
    pooled quantile equals what a single process would have reported.
    Returns ``0.0`` when the histogram is absent or empty.
    """
    series = parsed.get(f"{name}_bucket")
    if not series:
        return 0.0
    cumulative: dict[float, float] = {}
    for key, value in series.items():
        labels = dict(key)
        le_text = labels.pop("le", None)
        if le_text is None:
            continue
        if match is not None and any(labels.get(k) != v for k, v in match.items()):
            continue
        bound = math.inf if le_text == "+Inf" else float(le_text)
        cumulative[bound] = cumulative.get(bound, 0.0) + value
    if not cumulative:
        return 0.0
    bounds = sorted(cumulative)
    total = cumulative[bounds[-1]]
    if total <= 0:
        return 0.0
    target = quantile * total
    previous_cum = 0.0
    previous_bound = 0.0
    last_finite = max((b for b in bounds if math.isfinite(b)), default=0.0)
    for bound in bounds:
        bucket_cum = cumulative[bound]
        if bucket_cum >= target and bucket_cum > previous_cum:
            if not math.isfinite(bound):
                return last_finite
            fraction = (target - previous_cum) / (bucket_cum - previous_cum)
            return previous_bound + (bound - previous_bound) * min(1.0, max(0.0, fraction))
        previous_cum = max(previous_cum, bucket_cum)
        if math.isfinite(bound):
            previous_bound = bound
    return last_finite


@dataclass(frozen=True)
class DashboardSnapshot:
    """One poll of the service: parsed ``/metrics``, raw ``/stats``, a stamp.

    ``at`` is a ``time.monotonic()`` instant supplied by the poller — rates
    between two snapshots divide counter deltas by the stamp difference.
    """

    at: float
    metrics: dict[str, dict[LabelKey, float]]
    stats: dict[str, object]

    @classmethod
    def from_payloads(
        cls, metrics_text: str, stats: Mapping[str, object], *, at: float
    ) -> "DashboardSnapshot":
        return cls(at=float(at), metrics=parse_prometheus_text(metrics_text), stats=dict(stats))


def _label_values(
    parsed: Mapping[str, Mapping[LabelKey, float]], name: str, label: str
) -> list[str]:
    values = {
        value
        for key in parsed.get(name, {})
        for key_name, value in key
        if key_name == label
    }
    return sorted(values, key=lambda text: (len(text), text))


def _grouped(
    parsed: Mapping[str, Mapping[LabelKey, float]], name: str, label: str
) -> dict[str, float]:
    grouped: dict[str, float] = {}
    for key, value in parsed.get(name, {}).items():
        labels = dict(key)
        group = labels.get(label)
        if group is not None:
            grouped[group] = grouped.get(group, 0.0) + value
    return grouped


def summarize(
    current: DashboardSnapshot, previous: DashboardSnapshot | None = None
) -> dict[str, object]:
    """Reduce one or two snapshots to the JSON-safe dashboard summary.

    Rates (``rps`` fields) need a predecessor snapshot and are ``None``
    without one — the ``--once`` mode reports absolute counters only.
    """
    metrics = current.metrics
    elapsed = None
    if previous is not None and current.at > previous.at:
        elapsed = current.at - previous.at

    def rate(name: str, match: Mapping[str, str] | None = None) -> float | None:
        if previous is None or elapsed is None:
            return None
        delta = metric_value(metrics, name, match) - metric_value(
            previous.metrics, name, match
        )
        return round(max(0.0, delta) / elapsed, 3)

    shard_states: dict[str, str] = {}
    shards_stats = current.stats.get("shards")
    if isinstance(shards_stats, list):
        for entry in shards_stats:
            if isinstance(entry, dict):
                shard_states[str(entry.get("shard"))] = str(entry.get("state", "?"))

    shards: list[dict[str, object]] = []
    for shard in _label_values(metrics, "repro_requests_total", "shard"):
        match = {"shard": shard}
        hits = metric_value(metrics, "repro_cache_lookup_hits_total", match)
        misses = metric_value(metrics, "repro_cache_lookup_misses_total", match)
        lookups = hits + misses
        shards.append(
            {
                "shard": int(shard),
                "state": shard_states.get(shard, "ready"),
                "requests_total": metric_value(metrics, "repro_requests_total", match),
                "rps": rate("repro_requests_total", match),
                "p50_ms": round(
                    histogram_quantile(metrics, "repro_solve_latency_seconds", 0.5, match)
                    * 1e3,
                    3,
                ),
                "p99_ms": round(
                    histogram_quantile(metrics, "repro_solve_latency_seconds", 0.99, match)
                    * 1e3,
                    3,
                ),
                "queue_depth": metric_value(metrics, "repro_queue_depth", match),
                "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
                "cache_entries": metric_value(metrics, "repro_cache_entries", match),
                "restarts": metric_value(metrics, "repro_worker_restarts_total", match),
            }
        )

    return {
        "uptime_seconds": round(metric_value(metrics, "repro_uptime_seconds"), 3),
        "responses_total": metric_value(metrics, "repro_http_responses_total"),
        "errors_total": metric_value(metrics, "repro_http_errors_total"),
        "rps": rate("repro_http_responses_total"),
        "workers_ready": metric_value(metrics, "repro_workers_ready", default=1.0),
        "p50_ms": round(
            histogram_quantile(metrics, "repro_solve_latency_seconds", 0.5) * 1e3, 3
        ),
        "p99_ms": round(
            histogram_quantile(metrics, "repro_solve_latency_seconds", 0.99) * 1e3, 3
        ),
        "shed_total": metric_value(metrics, "repro_shed_total"),
        "shed_by_tier": _grouped(metrics, "repro_shed_by_tier_total", "tier"),
        "slo": {
            "pressure": metric_value(metrics, "repro_slo_pressure"),
            "queue_wait_p99_seconds": metric_value(
                metrics, "repro_slo_queue_wait_p99_seconds"
            ),
            "queue_wait_target_seconds": metric_value(
                metrics, "repro_slo_queue_wait_target_seconds"
            ),
            "solve_latency_p99_seconds": metric_value(
                metrics, "repro_slo_solve_latency_p99_seconds"
            ),
            "solve_latency_target_seconds": metric_value(
                metrics, "repro_slo_solve_latency_target_seconds"
            ),
            "error_budget": _grouped(metrics, "repro_slo_error_budget_total", "slo"),
        },
        "traces_recorded_total": metric_value(metrics, "repro_traces_recorded_total"),
        "traces_slow_total": metric_value(metrics, "repro_traces_slow_total"),
        "shards": shards,
    }


def _fmt_rate(value: object) -> str:
    return f"{value:8.1f}" if isinstance(value, (int, float)) else f"{'-':>8}"


def render_dashboard(
    current: DashboardSnapshot, previous: DashboardSnapshot | None = None
) -> list[str]:
    """The fixed-width dashboard lines for one (pair of) snapshot(s)."""
    summary = summarize(current, previous)
    slo = summary["slo"]
    assert isinstance(slo, dict)
    shed_by_tier = summary["shed_by_tier"]
    assert isinstance(shed_by_tier, dict)
    budget = slo["error_budget"]
    assert isinstance(budget, dict)
    lines = [
        (
            "repro top — "
            f"up {summary['uptime_seconds']:.0f}s · "
            f"{int(float(str(summary['workers_ready'])))} worker(s) ready · "
            f"{summary['responses_total']:.0f} responses "
            f"({_fmt_rate(summary['rps']).strip()} rps) · "
            f"p50 {summary['p50_ms']:.1f}ms · p99 {summary['p99_ms']:.1f}ms"
        ),
        (
            "slo      — "
            f"pressure {slo['pressure']:.2f} · "
            f"queue-wait p99 {slo['queue_wait_p99_seconds']:.3f}s"
            f"/{slo['queue_wait_target_seconds']:g}s · "
            f"solve p99 {slo['solve_latency_p99_seconds']:.3f}s"
            f"/{slo['solve_latency_target_seconds']:g}s · "
            "budget burned "
            + (
                ", ".join(f"{name} {count:.0f}" for name, count in sorted(budget.items()))
                or "none"
            )
        ),
        (
            "shedding — "
            f"total {summary['shed_total']:.0f}"
            + (
                " ("
                + ", ".join(
                    f"{tier} {count:.0f}" for tier, count in sorted(shed_by_tier.items())
                )
                + ")"
                if shed_by_tier
                else ""
            )
            + f" · traces {summary['traces_recorded_total']:.0f} recorded, "
            f"{summary['traces_slow_total']:.0f} slow"
        ),
        "",
        f"{'shard':>5}  {'state':<8}  {'requests':>9}  {'rps':>8}  "
        f"{'p50 ms':>8}  {'p99 ms':>8}  {'queue':>5}  {'hit%':>6}  {'restarts':>8}",
    ]
    shards = summary["shards"]
    assert isinstance(shards, list)
    for shard in shards:
        assert isinstance(shard, dict)
        hit_rate = shard["cache_hit_rate"]
        assert isinstance(hit_rate, float)
        lines.append(
            f"{shard['shard']:>5}  {str(shard['state']):<8}  "
            f"{shard['requests_total']:>9.0f}  {_fmt_rate(shard['rps'])}  "
            f"{shard['p50_ms']:>8.1f}  {shard['p99_ms']:>8.1f}  "
            f"{shard['queue_depth']:>5.0f}  {hit_rate * 100:>6.1f}  "
            f"{shard['restarts']:>8.0f}"
        )
    if not shards:
        lines.append("  (no per-shard series yet — has the service answered a request?)")
    return lines


def run_dashboard(
    fetch: Callable[[], DashboardSnapshot],
    *,
    interval: float = 2.0,
    iterations: int | None = None,
) -> None:
    """The live curses loop: redraw every ``interval`` seconds until ``q``.

    ``fetch`` polls the service and returns a stamped snapshot (the CLI wires
    it to :class:`~repro.service.client.ServiceClient`); ``iterations`` bounds
    the redraw count for tests.  Curses is imported here, not at module
    scope, so ``--once`` mode and the test-suite never require a terminal.
    """
    import curses

    def _loop(screen: "curses.window") -> None:
        curses.curs_set(0)
        screen.nodelay(True)
        previous: DashboardSnapshot | None = None
        current = fetch()
        redraws = 0
        while True:
            lines = render_dashboard(current, previous)
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for row, line in enumerate(lines[: max_y - 1]):
                screen.addnstr(row, 0, line, max(1, max_x - 1))
            screen.addnstr(
                min(len(lines), max_y - 1),
                0,
                f"(refresh {interval:g}s — q quits)",
                max(1, max_x - 1),
            )
            screen.refresh()
            redraws += 1
            if iterations is not None and redraws >= iterations:
                return
            deadline = time.monotonic() + interval
            while time.monotonic() < deadline:
                pressed = screen.getch()
                if pressed in (ord("q"), ord("Q")):
                    return
                curses.napms(50)
            previous, current = current, fetch()

    curses.wrapper(_loop)
