"""Request tracing: trace ids, spans, and a bounded ring of recent traces.

A trace is born at admission (:class:`TraceBuilder` mints the id the HTTP
layer echoes in every response), accumulates :class:`Span` records as the
request moves through the scheduler — admission, cache lookup, batch window,
queue wait, the solve itself, each backend fallback attempt — and is sealed
into an immutable :class:`Trace` when the response is written.

Span times are **offsets in milliseconds from the trace's start**, measured
with ``time.perf_counter``.  Offsets rather than absolute clocks is what
makes cross-process assembly possible: a shard worker's ``perf_counter`` is
not comparable to the front's, so the worker reports spans relative to its
own trace start and the front re-bases them by the pipe-send offset
(:meth:`TraceBuilder.add_span` with ``shift_ms``).  The re-based offsets are
approximate by one pipe hop; durations are exact.

:class:`TraceRecorder` keeps three bounded rings — every recent trace, the
slow ones, and periodic *exemplars* (every Nth trace retained regardless of
latency, so healthy requests stay inspectable even when the recent ring
churns under load) — and emits any trace slower than the configured
threshold to the structured log.  ``GET /traces/<id>`` and ``GET /traces``
are served straight from the recorder.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field

from .log import StructuredLogger


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (unique per request, cheap to mint)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-digit span id."""
    return uuid.uuid4().hex[:8]


@dataclass(frozen=True)
class Span:
    """One named, timed step of a trace.

    ``start_ms`` is the offset from the trace's start; ``annotations`` carry
    step-specific facts (cache hit?, batch size, winning solver, ...).  The
    ``span_id`` is what lets coalesced requests prove they shared work: every
    waiter attached to one in-flight computation records the *same* solve
    span id.
    """

    name: str
    span_id: str
    start_ms: float
    duration_ms: float
    annotations: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "annotations": dict(self.annotations),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Span":
        annotations = payload.get("annotations")
        return cls(
            name=str(payload.get("name", "")),
            span_id=str(payload.get("span_id", "")),
            start_ms=float(payload.get("start_ms", 0.0)),  # type: ignore[arg-type]
            duration_ms=float(payload.get("duration_ms", 0.0)),  # type: ignore[arg-type]
            annotations=dict(annotations) if isinstance(annotations, Mapping) else {},
        )


@dataclass(frozen=True)
class Trace:
    """A completed request trace (immutable; what the recorder ring holds)."""

    trace_id: str
    started_at: float  # wall-clock epoch seconds of the trace's start
    status: str  # "ok" or the structured error code
    duration_ms: float
    spans: tuple[Span, ...]

    def to_dict(self) -> dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "started_at": self.started_at,
            "status": self.status,
            "duration_ms": round(self.duration_ms, 3),
            "spans": [span.to_dict() for span in self.spans],
        }


class TraceBuilder:
    """A trace under construction: the id plus a growing span list.

    Not thread-safe by design — one builder belongs to one request path.
    The scheduler and server record spans from the event loop; workers build
    their own and ship the spans across the pipe.
    """

    __slots__ = ("trace_id", "started_at", "_t0", "_spans")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self._spans: list[Span] = []

    @property
    def spans(self) -> tuple[Span, ...]:
        return tuple(self._spans)

    def offset_ms(self, at: float) -> float:
        """The trace-relative offset of a ``perf_counter`` instant, in ms."""
        return (at - self._t0) * 1e3

    def add(
        self,
        name: str,
        started: float,
        ended: float,
        *,
        span_id: str | None = None,
        **annotations: object,
    ) -> Span:
        """Record a span from two ``perf_counter`` instants of this process."""
        span = Span(
            name=name,
            span_id=span_id if span_id else new_span_id(),
            start_ms=self.offset_ms(started),
            duration_ms=max(0.0, (ended - started) * 1e3),
            annotations=dict(annotations),
        )
        self._spans.append(span)
        return span

    def add_span(self, span: Span, *, shift_ms: float = 0.0) -> None:
        """Adopt a span built elsewhere (a shard worker), re-based by ``shift_ms``."""
        if shift_ms:
            span = Span(
                name=span.name,
                span_id=span.span_id,
                start_ms=span.start_ms + shift_ms,
                duration_ms=span.duration_ms,
                annotations=span.annotations,
            )
        self._spans.append(span)

    @contextmanager
    def timed(self, name: str, **annotations: object) -> Iterator[None]:
        """Record a span around a ``with`` block."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, started, time.perf_counter(), **annotations)

    def finish(self, status: str = "ok") -> Trace:
        """Seal the builder into an immutable :class:`Trace`."""
        spans = sorted(self._spans, key=lambda span: span.start_ms)
        return Trace(
            trace_id=self.trace_id,
            started_at=self.started_at,
            status=status,
            duration_ms=(time.perf_counter() - self._t0) * 1e3,
            spans=tuple(spans),
        )


class TraceRecorder:
    """Bounded rings of completed traces plus slow-request log emission.

    Three rings, each capped at ``capacity`` traces:

    * the *recent* ring holds every completed trace (the oldest falls off);
    * the *slow* ring retains traces slower than ``slow_threshold_seconds``,
      which are also emitted through ``logger`` with their full span
      breakdown — the "why did p99 trip" artifact;
    * the *exemplar* ring retains every ``exemplar_interval``-th trace
      regardless of latency (``0`` disables sampling), so a representative
      healthy request survives long after the recent ring has churned.

    Thread-safe under one lock, mirroring :class:`MetricsRegistry`: the
    serving loop records from the event loop while the sharded front's pipe
    reader threads and ``/traces`` handlers look traces up concurrently —
    ring eviction, lookup and listing all hold the same lock.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        slow_threshold_seconds: float = 1.0,
        exemplar_interval: int = 32,
        logger: StructuredLogger | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if exemplar_interval < 0:
            raise ValueError(f"exemplar_interval must be >= 0, got {exemplar_interval}")
        self.capacity = int(capacity)
        self.slow_threshold_seconds = float(slow_threshold_seconds)
        self.exemplar_interval = int(exemplar_interval)
        self._logger = logger
        self._lock = threading.Lock()
        self._ring: deque[Trace] = deque(maxlen=self.capacity)
        self._slow_ring: deque[Trace] = deque(maxlen=self.capacity)
        self._exemplar_ring: deque[Trace] = deque(maxlen=self.capacity)
        self._recorded_total = 0
        self._slow_total = 0
        self._exemplar_total = 0

    def record(self, trace: Trace) -> None:
        slow = trace.duration_ms >= self.slow_threshold_seconds * 1e3
        with self._lock:
            self._ring.append(trace)
            self._recorded_total += 1
            if slow:
                self._slow_ring.append(trace)
                self._slow_total += 1
            interval = self.exemplar_interval
            if interval and (self._recorded_total - 1) % interval == 0:
                self._exemplar_ring.append(trace)
                self._exemplar_total += 1
        if slow and self._logger is not None:
            self._logger.warning(
                "slow-request",
                trace_id=trace.trace_id,
                status=trace.status,
                duration_ms=round(trace.duration_ms, 3),
                threshold_ms=round(self.slow_threshold_seconds * 1e3, 3),
                spans=[span.to_dict() for span in trace.spans],
            )

    def snapshot(self) -> list[Trace]:
        """The recent-ring traces, oldest first (a copy; safe to iterate)."""
        with self._lock:
            return list(self._ring)

    def find(self, trace_id: str) -> Trace | None:
        """The retained trace with ``trace_id``, or ``None`` if it fell off.

        Searches the recent ring newest-first, then the slow and exemplar
        rings — a trace evicted from the recent ring is still findable while
        a retention ring holds it.
        """
        with self._lock:
            for ring in (self._ring, self._slow_ring, self._exemplar_ring):
                for trace in reversed(ring):
                    if trace.trace_id == trace_id:
                        return trace
        return None

    def query(self, *, slow: bool = False, limit: int = 32) -> list[Trace]:
        """Retained traces, newest first, at most ``limit`` of them.

        ``slow=True`` lists the slow ring only; otherwise the recent and
        exemplar rings are combined (deduplicated by trace id).
        """
        limit = max(0, int(limit))
        with self._lock:
            if slow:
                candidates = list(self._slow_ring)
            else:
                seen: set[str] = set()
                candidates = []
                for ring in (self._ring, self._exemplar_ring):
                    for trace in ring:
                        if trace.trace_id not in seen:
                            seen.add(trace.trace_id)
                            candidates.append(trace)
        candidates.sort(key=lambda trace: trace.started_at, reverse=True)
        return candidates[:limit]

    @property
    def recorded_total(self) -> int:
        with self._lock:
            return self._recorded_total

    @property
    def slow_total(self) -> int:
        with self._lock:
            return self._slow_total

    @property
    def exemplar_total(self) -> int:
        with self._lock:
            return self._exemplar_total
