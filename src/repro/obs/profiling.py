"""Per-backend profiling: capture the facade's fallback-chain attempts.

The solver facade's :func:`~repro.solvers.facade._evaluate_capturing` is the
single place the spectral → geometric → ctmc → simulate chain runs, so it is
the single place backend timing can be observed.  It calls
:func:`record_attempt` around every attempt — a no-op unless a caller has an
active :func:`capture_attempts` context on the *same thread*.

Thread-locality is deliberate: the serving scheduler runs batches on an
executor thread (``run_in_executor`` does not propagate contextvars into the
synchronous callable), the parallel sweep path runs in worker *processes*,
and concurrent batches must not see each other's attempts.  The capture
therefore activates exactly where the evaluation happens: ``repro solve
--profile`` wraps its in-process solve, and :func:`repro.solvers.solve_many`
accepts a ``profile`` mapping it fills from inside its serial execution path.

Attempt records are plain frozen dataclasses, JSON-friendly via
:meth:`AttemptRecord.to_dict`, so they slot into solution metadata, trace
spans and CLI tables alike.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass(frozen=True)
class AttemptRecord:
    """One backend attempt in a fallback chain: who, how long, how it ended."""

    solver: str
    seconds: float
    ok: bool
    error: str | None = None
    warm_start: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "solver": self.solver,
            "seconds": round(self.seconds, 6),
            "ok": self.ok,
            "error": self.error,
            "warm_start": self.warm_start,
        }


class _CaptureState(threading.local):
    """Per-thread stack of active capture sinks."""

    def __init__(self) -> None:
        self.stack: list[list[AttemptRecord]] = []


_state = _CaptureState()


@contextmanager
def capture_attempts() -> Iterator[list[AttemptRecord]]:
    """Collect every fallback-chain attempt made on this thread in the block.

    Nests: an inner capture shadows the outer one, so a profiled solve inside
    a profiled sweep attributes attempts to the innermost interested caller.
    """
    records: list[AttemptRecord] = []
    _state.stack.append(records)
    try:
        yield records
    finally:
        _state.stack.pop()


def record_attempt(
    solver: str,
    seconds: float,
    *,
    ok: bool,
    error: str | None = None,
    warm_start: bool = False,
) -> None:
    """Report one backend attempt; free when no capture is active."""
    stack = _state.stack
    if not stack:
        return
    stack[-1].append(
        AttemptRecord(
            solver=solver, seconds=seconds, ok=ok, error=error, warm_start=warm_start
        )
    )


def capturing() -> bool:
    """Whether an attempt capture is active on this thread."""
    return bool(_state.stack)
