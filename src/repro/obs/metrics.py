"""Process-safe metrics: counters, gauges, exact-merge latency histograms.

The design constraint is the sharded serving tier: each shard worker records
into its own registry, serialises it to a plain dict over the existing stats
pipe, and the front **sums** the per-shard payloads.  Summing is only exact
when every process uses *identical, fixed* histogram bucket bounds — so the
bounds are part of a histogram's identity (:meth:`Histogram.merge` refuses a
mismatch) and the defaults are log-spaced constants, not adaptive.

Merging is associative and commutative (bucket-wise integer sums plus a
float ``sum``), which is what makes the aggregated numbers independent of
worker count and arrival order: ``merge(a, b) == merge(b, a)``, and a
histogram merged across pickled pipe round-trips equals one recorded in a
single process.  The benchmark harness reuses :class:`Histogram` for its
percentiles, so the numbers CI gates on and the numbers the server reports
come from one implementation.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition format
(``# HELP``/``# TYPE`` comments, cumulative ``_bucket{le=...}`` series,
``_sum``/``_count``) served by ``GET /metrics``.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from ..exceptions import ParameterError

#: Fixed log-spaced latency bucket upper bounds, in seconds: eighth-decade
#: steps from 100 µs to 100 s.  Fine enough that an in-bucket interpolated
#: p99 is within ~±15% of the true value, coarse enough that a histogram is
#: ~50 integers on the wire.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 8.0 - 4.0), 10) for exponent in range(49)
)

_LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> _LabelItems:
    """The canonical (sorted) form of a label set, used as the series key."""
    if not labels:
        return ()
    return tuple(sorted((str(name), str(value)) for name, value in labels.items()))


def _format_value(value: float) -> str:
    """A Prometheus-friendly number: integral floats render without ``.0``."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: _LabelItems, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{name}="{_escape_label(value)}"' for name, value in (*items, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (thread-safe).

    Across processes gauges are *summed* by :meth:`MetricsRegistry.merge_dict`
    — every gauge in this codebase (queue depth, cache entries) is additive
    over shards, which is also what an aggregated ``/metrics`` view wants.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket latency histogram with exact cross-process merge.

    ``upper_bounds`` are inclusive bucket upper bounds in ascending order; an
    implicit overflow bucket (``+Inf``) catches everything beyond the last
    bound.  Because the bounds are fixed at construction, merging two
    histograms is a bucket-wise integer sum — exact, associative and
    commutative — rather than an approximation.
    """

    __slots__ = ("_lock", "bounds", "counts", "total", "count")

    def __init__(self, upper_bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in upper_bounds)
        if not bounds:
            raise ParameterError("a histogram needs at least one bucket bound")
        if any(later <= earlier for earlier, later in zip(bounds, bounds[1:])):
            raise ParameterError("histogram bucket bounds must be strictly increasing")
        self._lock = threading.Lock()
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf overflow
        self.total = 0.0  # sum of observed values
        self.count = 0

    # -- recording and merging --------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation (clamped into the overflow bucket if huge)."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s buckets into this histogram, exactly.

        Raises :class:`~repro.exceptions.ParameterError` on a bucket-bound
        mismatch: summing differently-bucketed histograms would silently
        corrupt percentiles, and fixed shared bounds are the whole design.
        """
        if other.bounds != self.bounds:
            raise ParameterError(
                f"cannot merge histograms with different bucket bounds "
                f"({len(other.bounds)} vs {len(self.bounds)} buckets)"
            )
        snapshot = other.snapshot()
        with self._lock:
            for index, bucket_count in enumerate(snapshot.counts):
                self.counts[index] += bucket_count
            self.total += snapshot.total
            self.count += snapshot.count

    def snapshot(self) -> "Histogram":
        """A consistent point-in-time copy (safe to read without the lock)."""
        with self._lock:
            copy = Histogram(self.bounds)
            copy.counts = list(self.counts)
            copy.total = self.total
            copy.count = self.count
            return copy

    # -- reading -----------------------------------------------------------

    def percentile(self, quantile: float) -> float:
        """The ``quantile`` (in ``[0, 1]``) estimated by in-bucket interpolation.

        The estimate interpolates linearly between a bucket's lower and upper
        bound; observations in the overflow bucket report the last finite
        bound (the histogram cannot know how far beyond it they landed).
        Exact to within one bucket's width — which the log-spaced defaults
        keep proportional to the value itself.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ParameterError(f"quantile must be within [0, 1], got {quantile}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = quantile * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                if bucket_count == 0:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= target:
                    if index >= len(self.bounds):
                        return self.bounds[-1]
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = self.bounds[index]
                    fraction = (target - previous) / bucket_count
                    return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            return self.bounds[-1]  # pragma: no cover - unreachable when count > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        ours, theirs = self.snapshot(), other.snapshot()
        return (
            ours.bounds == theirs.bounds
            and ours.counts == theirs.counts
            and ours.count == theirs.count
            and abs(ours.total - theirs.total) <= 1e-9 * max(1.0, abs(ours.total))
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    # -- serialization (the pipe format) ------------------------------------

    def to_dict(self) -> dict[str, object]:
        snapshot = self.snapshot()
        return {
            "bounds": list(snapshot.bounds),
            "counts": list(snapshot.counts),
            "sum": snapshot.total,
            "count": snapshot.count,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Histogram":
        bounds = payload.get("bounds")
        counts = payload.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            raise ParameterError("histogram payload needs 'bounds' and 'counts' lists")
        histogram = cls(tuple(float(bound) for bound in bounds))
        if len(counts) != len(histogram.counts):
            raise ParameterError(
                f"histogram payload has {len(counts)} counts for "
                f"{len(histogram.counts)} buckets"
            )
        histogram.counts = [int(item) for item in counts]
        histogram.total = float(payload.get("sum", 0.0))  # type: ignore[arg-type]
        histogram.count = int(payload.get("count", 0))  # type: ignore[arg-type]
        return histogram

    # Pickle support: the lock is recreated, the data travels.  Spawned shard
    # workers send histograms through multiprocessing pipes, which pickle.

    def __getstate__(self) -> dict[str, object]:
        return self.to_dict()

    def __setstate__(self, state: dict[str, object]) -> None:
        restored = Histogram.from_dict(state)
        self._lock = threading.Lock()
        self.bounds = restored.bounds
        self.counts = restored.counts
        self.total = restored.total
        self.count = restored.count


_KINDS = ("counter", "gauge", "histogram")


@dataclass
class _Family:
    """One metric family: a name, a kind, help text and its labelled series."""

    name: str
    kind: str
    help: str
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    series: dict[_LabelItems, Counter | Gauge | Histogram] = field(default_factory=dict)


class MetricsRegistry:
    """A named collection of metric families, serialisable and mergeable.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the family's kind (and help text), later calls with the same name
    return the existing series for the given labels.  Asking for an existing
    name under a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _family(
        self, name: str, kind: str, help_text: str, buckets: tuple[float, ...]
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name=name, kind=kind, help=help_text, buckets=buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ParameterError(
                    f"metric {name!r} is registered as a {family.kind}, not a {kind}"
                )
            return family

    def counter(
        self, name: str, help_text: str = "", *, labels: Mapping[str, str] | None = None
    ) -> Counter:
        family = self._family(name, "counter", help_text, ())
        key = _label_key(labels)
        with self._lock:
            series = family.series.get(key)
            if series is None:
                series = Counter()
                family.series[key] = series
            assert isinstance(series, Counter)
            return series

    def gauge(
        self, name: str, help_text: str = "", *, labels: Mapping[str, str] | None = None
    ) -> Gauge:
        family = self._family(name, "gauge", help_text, ())
        key = _label_key(labels)
        with self._lock:
            series = family.series.get(key)
            if series is None:
                series = Gauge()
                family.series[key] = series
            assert isinstance(series, Gauge)
            return series

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        bounds = tuple(float(bound) for bound in buckets)
        family = self._family(name, "histogram", help_text, bounds)
        key = _label_key(labels)
        with self._lock:
            series = family.series.get(key)
            if series is None:
                series = Histogram(family.buckets)
                family.series[key] = series
            assert isinstance(series, Histogram)
            return series

    # -- serialization and exact merge --------------------------------------

    def to_dict(self) -> dict[str, object]:
        """A plain-dict snapshot (what shard workers put on the stats pipe)."""
        with self._lock:
            families = [
                _Family(f.name, f.kind, f.help, f.buckets, dict(f.series))
                for f in self._families.values()
            ]
        payload: dict[str, object] = {}
        for family in families:
            entries: list[dict[str, object]] = []
            for key, series in list(family.series.items()):
                data: dict[str, object]
                if isinstance(series, Histogram):
                    data = series.to_dict()
                else:
                    data = {"value": series.value}
                entries.append({"labels": dict(key), "data": data})
            payload[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": entries,
            }
        return payload

    def merge_dict(
        self, payload: Mapping[str, object], *, extra_labels: Mapping[str, str] | None = None
    ) -> None:
        """Sum a :meth:`to_dict` payload into this registry, exactly.

        Counters and gauges add, histograms merge bucket-wise.  Malformed
        families are skipped (a newer worker talking to an older front must
        degrade, not crash the aggregation), mirroring the pipe protocol's
        unknown-message tolerance.
        """
        for name, family_payload in payload.items():
            if not isinstance(family_payload, Mapping):
                continue
            kind = family_payload.get("kind")
            if kind not in _KINDS:
                continue
            help_text = str(family_payload.get("help", ""))
            entries = family_payload.get("series")
            if not isinstance(entries, list):
                continue
            for entry in entries:
                if not isinstance(entry, Mapping):
                    continue
                raw_labels = entry.get("labels")
                labels = dict(raw_labels) if isinstance(raw_labels, Mapping) else {}
                if extra_labels:
                    labels.update(extra_labels)
                data = entry.get("data")
                if not isinstance(data, Mapping):
                    continue
                try:
                    if kind == "histogram":
                        incoming = Histogram.from_dict(data)
                        target = self.histogram(
                            str(name), help_text, labels=labels, buckets=incoming.bounds
                        )
                        target.merge(incoming)
                    elif kind == "counter":
                        self.counter(str(name), help_text, labels=labels).inc(
                            float(data.get("value", 0.0))  # type: ignore[arg-type]
                        )
                    else:
                        self.gauge(str(name), help_text, labels=labels).inc(
                            float(data.get("value", 0.0))  # type: ignore[arg-type]
                        )
                except (ParameterError, TypeError, ValueError):
                    continue

    # -- Prometheus text exposition ------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            families = sorted(
                (
                    _Family(f.name, f.kind, f.help, f.buckets, dict(f.series))
                    for f in self._families.values()
                ),
                key=lambda family: family.name,
            )
        lines: list[str] = []
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.series):
                series = family.series[key]
                if isinstance(series, Histogram):
                    snapshot = series.snapshot()
                    cumulative = 0
                    for bound, bucket_count in zip(snapshot.bounds, snapshot.counts):
                        cumulative += bucket_count
                        labels = _render_labels(key, (("le", _format_value(bound)),))
                        lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    cumulative += snapshot.counts[-1]
                    labels = _render_labels(key, (("le", "+Inf"),))
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    lines.append(
                        f"{family.name}_sum{_render_labels(key)} "
                        f"{_format_value(snapshot.total)}"
                    )
                    lines.append(f"{family.name}_count{_render_labels(key)} {snapshot.count}")
                else:
                    lines.append(
                        f"{family.name}{_render_labels(key)} {_format_value(series.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""


#: The process-global registry for numerical-health metrics.  The solver
#: facade and the Markov kernels record here (IAD sweeps, residuals,
#: truncation growth, fallback attempts) without any service plumbing; the
#: scheduler folds this registry into its metrics snapshot, so the numbers
#: ride the existing stats pipe from shard workers and surface on
#: ``/metrics`` in both serving tiers.
_NUMERICS_REGISTRY = MetricsRegistry()

#: Bucket bounds for IAD sweep-count histograms: small integer counts up to
#: the kernel's ``MAX_IAD_SWEEPS`` cap.
SWEEP_COUNT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
)

#: Bucket bounds for residual histograms: log-spaced from convergence-level
#: (1e-16) up to hopeless (1.0).
RESIDUAL_BUCKETS: tuple[float, ...] = tuple(10.0**exponent for exponent in range(-16, 1))


def numerics_registry() -> MetricsRegistry:
    """The process-global numerical-health :class:`MetricsRegistry`."""
    return _NUMERICS_REGISTRY
