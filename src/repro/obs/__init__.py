"""Observability substrate: metrics, tracing, structured logs, profiling.

Stdlib-only telemetry for the serving stack, in the same spirit as
:mod:`repro.analysis` — no new dependencies, process-safe by construction:

:mod:`repro.obs.metrics`
    Counters, gauges and fixed log-bucket latency histograms behind a
    :class:`MetricsRegistry`.  Every metric serialises to a plain dict
    (:meth:`MetricsRegistry.to_dict`) that travels over the shard workers'
    existing stats pipe and merges *exactly* in the front process — bucket
    counts are summed, so the aggregated histogram is identical to one
    recorded in a single process.  :meth:`MetricsRegistry.render` emits the
    Prometheus text exposition format served by ``GET /metrics``.

:mod:`repro.obs.tracing`
    Request traces: a trace id minted at admission, spans recorded through
    the scheduler and solver facade, a bounded in-memory ring of recent
    traces (:class:`TraceRecorder`) and a slow-request threshold that emits
    completed traces to the structured log.

:mod:`repro.obs.log`
    A structured logger (text or JSON lines) with bound fields for trace-id
    correlation — the only sanctioned logging surface in ``repro.service``
    and ``repro.obs`` modules (lint rule RPR010).

:mod:`repro.obs.profiling`
    Thread-local capture of per-backend fallback-chain attempts recorded by
    the solver facade; surfaced by ``repro solve --profile``.

:mod:`repro.obs.slo`
    Rolling-window p99 tracking over the live latency histograms
    (:class:`SloTracker`): the ``repro_slo_*`` gauge families, exact
    error-budget counters, and the latency-pressure signal admission
    control's tiered shedding consults.

:mod:`repro.obs.dashboard`
    The ``repro top`` live dashboard: a Prometheus-text parser plus a pure
    renderer over ``/metrics`` + ``/stats`` snapshots (curses drives the
    live loop; ``--once --json`` serves scripts).
"""

from __future__ import annotations

from .dashboard import DashboardSnapshot, parse_prometheus_text, render_dashboard
from .log import StructuredLogger, configure_logging, get_logger, logging_config
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    numerics_registry,
)
from .profiling import AttemptRecord, capture_attempts, record_attempt
from .slo import SloTargets, SloTracker
from .tracing import Span, Trace, TraceBuilder, TraceRecorder, new_span_id, new_trace_id

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "AttemptRecord",
    "Counter",
    "DashboardSnapshot",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SloTargets",
    "SloTracker",
    "Span",
    "StructuredLogger",
    "Trace",
    "TraceBuilder",
    "TraceRecorder",
    "capture_attempts",
    "configure_logging",
    "get_logger",
    "logging_config",
    "new_span_id",
    "new_trace_id",
    "numerics_registry",
    "parse_prometheus_text",
    "record_attempt",
]
