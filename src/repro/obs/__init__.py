"""Observability substrate: metrics, tracing, structured logs, profiling.

Stdlib-only telemetry for the serving stack, in the same spirit as
:mod:`repro.analysis` — no new dependencies, process-safe by construction:

:mod:`repro.obs.metrics`
    Counters, gauges and fixed log-bucket latency histograms behind a
    :class:`MetricsRegistry`.  Every metric serialises to a plain dict
    (:meth:`MetricsRegistry.to_dict`) that travels over the shard workers'
    existing stats pipe and merges *exactly* in the front process — bucket
    counts are summed, so the aggregated histogram is identical to one
    recorded in a single process.  :meth:`MetricsRegistry.render` emits the
    Prometheus text exposition format served by ``GET /metrics``.

:mod:`repro.obs.tracing`
    Request traces: a trace id minted at admission, spans recorded through
    the scheduler and solver facade, a bounded in-memory ring of recent
    traces (:class:`TraceRecorder`) and a slow-request threshold that emits
    completed traces to the structured log.

:mod:`repro.obs.log`
    A structured logger (text or JSON lines) with bound fields for trace-id
    correlation — the only sanctioned logging surface in ``repro.service``
    and ``repro.obs`` modules (lint rule RPR010).

:mod:`repro.obs.profiling`
    Thread-local capture of per-backend fallback-chain attempts recorded by
    the solver facade; surfaced by ``repro solve --profile``.
"""

from __future__ import annotations

from .log import StructuredLogger, configure_logging, get_logger, logging_config
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import AttemptRecord, capture_attempts, record_attempt
from .tracing import Span, Trace, TraceBuilder, TraceRecorder, new_span_id, new_trace_id

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "AttemptRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StructuredLogger",
    "Trace",
    "TraceBuilder",
    "TraceRecorder",
    "capture_attempts",
    "configure_logging",
    "get_logger",
    "logging_config",
    "new_span_id",
    "new_trace_id",
    "record_attempt",
]
