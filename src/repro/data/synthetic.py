"""Synthetic stand-in for the proprietary Sun Microsystems breakdown trace.

The raw trace analysed in Section 2 of the paper is confidential (even its
time unit is withheld), so the reproduction generates a synthetic trace that
is statistically faithful to the published findings:

* operative periods are drawn from the 2-phase hyperexponential fit the paper
  reports (weights 0.7246 / 0.2754, rates 0.1663 / 0.0091 — i.e. 72% of
  periods with mean 6 and 28% with mean 110);
* outage durations are drawn from the corresponding inoperative fit
  (weights 0.9303 / 0.0697, rates 25.0043 / 1.6346);
* ``Time Between Events`` is emitted as outage duration plus operative
  period, exactly as Figure 2 defines the relationship;
* a configurable fraction of rows (default ~3%, matching the paper's "less
  than 4%") is corrupted so that ``Time Between Events < Outage Duration``
  and must be removed by the cleaning stage.

Because the generator samples from the distributions the paper itself
declares to be the correct fit, running the Section-2 pipeline on the
synthetic trace reproduces the paper's statistical *decisions* (exponential
rejected for operative periods, hyperexponential accepted) without access to
the original data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_probability
from ..distributions import SUN_INOPERATIVE_FIT, SUN_OPERATIVE_FIT, Distribution
from ..exceptions import DataError
from .trace import BreakdownTrace

#: Number of rows in the original Sun Microsystems data set.
SUN_TRACE_NUM_EVENTS = 140_000

#: Fraction of anomalous rows reported by the paper ("less than 4%").
SUN_TRACE_ANOMALOUS_FRACTION = 0.03


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Configuration of the synthetic breakdown-trace generator.

    Attributes
    ----------
    num_events:
        Number of rows to generate (the Sun set has 140,000).
    num_servers:
        Number of distinct servers to spread the events over.
    anomalous_fraction:
        Fraction of rows to corrupt into anomalies (Time Between Events
        smaller than Outage Duration).
    operative_distribution:
        Distribution of the operative periods; defaults to the paper's fitted
        hyperexponential.
    inoperative_distribution:
        Distribution of the outage durations; defaults to the paper's fitted
        hyperexponential.
    seed:
        Seed of the NumPy generator, so traces are reproducible.
    """

    num_events: int = SUN_TRACE_NUM_EVENTS
    num_servers: int = 250
    anomalous_fraction: float = SUN_TRACE_ANOMALOUS_FRACTION
    operative_distribution: Distribution = SUN_OPERATIVE_FIT
    inoperative_distribution: Distribution = SUN_INOPERATIVE_FIT
    seed: int = 936  # the technical-report number, for memorability

    def __post_init__(self) -> None:
        check_positive_int(self.num_events, "num_events")
        check_positive_int(self.num_servers, "num_servers")
        check_probability(self.anomalous_fraction, "anomalous_fraction")
        if self.anomalous_fraction >= 0.5:
            raise DataError("anomalous_fraction must be well below one half to be meaningful")


def generate_sun_like_trace(config: SyntheticTraceConfig | None = None) -> BreakdownTrace:
    """Generate a synthetic breakdown trace shaped like the Sun data set.

    Parameters
    ----------
    config:
        Generator configuration; the default reproduces the published scale
        (140,000 events, ~3% anomalies) with the paper's fitted distributions.

    Returns
    -------
    BreakdownTrace
        A trace whose cleaned operative and inoperative samples follow the
        configured distributions.
    """
    cfg = config if config is not None else SyntheticTraceConfig()
    rng = np.random.default_rng(cfg.seed)

    operative = np.asarray(cfg.operative_distribution.sample(rng, size=cfg.num_events))
    outages = np.asarray(cfg.inoperative_distribution.sample(rng, size=cfg.num_events))
    gaps = outages + operative

    # Corrupt a random subset of rows so that Time Between Events < Outage
    # Duration, mimicking the anomalies the paper had to discard (these arise
    # in practice from overlapping tickets and clock skew).
    num_anomalous = int(round(cfg.anomalous_fraction * cfg.num_events))
    if num_anomalous > 0:
        anomalous_indices = rng.choice(cfg.num_events, size=num_anomalous, replace=False)
        gaps[anomalous_indices] = outages[anomalous_indices] * rng.uniform(
            0.1, 0.9, size=num_anomalous
        )

    server_ids = rng.integers(0, cfg.num_servers, size=cfg.num_events)
    return BreakdownTrace.from_arrays(
        outage_durations=outages,
        times_between_events=gaps,
        server_ids=server_ids,
    )


def generate_small_trace(
    num_events: int = 5_000, seed: int = 936, anomalous_fraction: float = 0.03
) -> BreakdownTrace:
    """Generate a smaller synthetic trace for tests and quick examples.

    Identical in structure to :func:`generate_sun_like_trace` but with a much
    smaller default event count so unit tests stay fast.
    """
    config = SyntheticTraceConfig(
        num_events=num_events,
        num_servers=50,
        anomalous_fraction=anomalous_fraction,
        seed=seed,
    )
    return generate_sun_like_trace(config)
