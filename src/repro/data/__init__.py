"""Breakdown-trace data model, synthetic generation and I/O.

Public API
----------

* :class:`BreakdownEvent`, :class:`BreakdownTrace`,
  :func:`operative_periods_from_events` — the trace data model of paper
  Section 2 / Figure 2 (Outage Duration, Time Between Events, derived
  operative periods, anomaly cleaning).
* :class:`SyntheticTraceConfig`, :func:`generate_sun_like_trace`,
  :func:`generate_small_trace` — the synthetic substitute for the
  confidential Sun Microsystems data set (see DESIGN.md, substitution table).
* :func:`read_trace_csv`, :func:`write_trace_csv` — CSV I/O in the canonical
  three-column schema.
"""

from .io import CANONICAL_COLUMNS, read_trace_csv, write_trace_csv
from .synthetic import (
    SUN_TRACE_ANOMALOUS_FRACTION,
    SUN_TRACE_NUM_EVENTS,
    SyntheticTraceConfig,
    generate_small_trace,
    generate_sun_like_trace,
)
from .trace import BreakdownEvent, BreakdownTrace, operative_periods_from_events

__all__ = [
    "BreakdownEvent",
    "BreakdownTrace",
    "operative_periods_from_events",
    "SyntheticTraceConfig",
    "generate_sun_like_trace",
    "generate_small_trace",
    "SUN_TRACE_NUM_EVENTS",
    "SUN_TRACE_ANOMALOUS_FRACTION",
    "read_trace_csv",
    "write_trace_csv",
    "CANONICAL_COLUMNS",
]
