"""Breakdown-trace data model and cleaning.

The Sun Microsystems data set analysed in Section 2 of the paper contains one
row per server breakdown *event* with two fields of interest:

* **Outage Duration** — how long the server stayed inoperative after the
  event;
* **Time Between Events** — the time from this breakdown to the server's next
  breakdown.

Figure 2 of the paper shows how the length of an *operative* period is
derived from these two fields: the operative period following event ``n`` is
``Time Between Events - Outage Duration``.  A small fraction (< 4%) of rows
are anomalous (``Time Between Events < Outage Duration``) and are discarded.
This module implements that data model, the derivation and the cleaning step.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..exceptions import DataError


@dataclass(frozen=True)
class BreakdownEvent:
    """A single breakdown event (one row of the trace).

    Attributes
    ----------
    server_id:
        Identifier of the server the event belongs to.
    outage_duration:
        Length of the inoperative period that starts at this event.
    time_between_events:
        Time from this breakdown to the same server's next breakdown.
    """

    server_id: int
    outage_duration: float
    time_between_events: float

    @property
    def operative_period(self) -> float:
        """The operative period implied by this event (see paper Figure 2).

        Equal to ``time_between_events - outage_duration``; negative values
        indicate an anomalous row.
        """
        return self.time_between_events - self.outage_duration

    @property
    def is_anomalous(self) -> bool:
        """True when ``time_between_events < outage_duration`` (invalid row)."""
        return self.time_between_events < self.outage_duration


@dataclass(frozen=True)
class BreakdownTrace:
    """A collection of breakdown events with derived period samples.

    The class keeps the raw events and exposes the cleaned operative and
    inoperative period samples that Section 2 of the paper analyses.
    """

    events: tuple[BreakdownEvent, ...]

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_events(cls, events: Iterable[BreakdownEvent]) -> "BreakdownTrace":
        """Build a trace from an iterable of events."""
        event_tuple = tuple(events)
        if not event_tuple:
            raise DataError("a breakdown trace must contain at least one event")
        return cls(events=event_tuple)

    @classmethod
    def from_arrays(
        cls,
        outage_durations: Sequence[float],
        times_between_events: Sequence[float],
        server_ids: Sequence[int] | None = None,
    ) -> "BreakdownTrace":
        """Build a trace from parallel arrays of the two fields of interest."""
        outages = np.asarray(outage_durations, dtype=float)
        gaps = np.asarray(times_between_events, dtype=float)
        if outages.ndim != 1 or gaps.ndim != 1 or outages.size != gaps.size:
            raise DataError("outage_durations and times_between_events must be equal-length 1-D")
        if outages.size == 0:
            raise DataError("a breakdown trace must contain at least one event")
        if np.any(~np.isfinite(outages)) or np.any(~np.isfinite(gaps)):
            raise DataError("trace fields must be finite")
        if np.any(outages < 0.0) or np.any(gaps < 0.0):
            raise DataError("trace fields must be non-negative")
        if server_ids is None:
            ids = np.zeros(outages.size, dtype=int)
        else:
            ids = np.asarray(server_ids, dtype=int)
            if ids.shape != outages.shape:
                raise DataError("server_ids must have the same length as the other fields")
        events = tuple(
            BreakdownEvent(
                server_id=int(ids[i]),
                outage_duration=float(outages[i]),
                time_between_events=float(gaps[i]),
            )
            for i in range(outages.size)
        )
        return cls(events=events)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.events)

    @property
    def num_events(self) -> int:
        """The total number of rows in the trace."""
        return len(self.events)

    @property
    def num_servers(self) -> int:
        """The number of distinct servers appearing in the trace."""
        return len({event.server_id for event in self.events})

    @property
    def num_anomalous(self) -> int:
        """The number of anomalous rows (Time Between Events < Outage Duration)."""
        return sum(1 for event in self.events if event.is_anomalous)

    @property
    def anomalous_fraction(self) -> float:
        """The fraction of anomalous rows; the paper reports < 4% for the Sun set."""
        return self.num_anomalous / self.num_events

    # ------------------------------------------------------------------ #
    # Cleaning and derived samples
    # ------------------------------------------------------------------ #

    def cleaned(self) -> "BreakdownTrace":
        """Return a trace with anomalous rows removed (the paper ignores them)."""
        valid = tuple(event for event in self.events if not event.is_anomalous)
        if not valid:
            raise DataError("cleaning removed every event; the trace is unusable")
        return BreakdownTrace(events=valid)

    def operative_periods(self) -> np.ndarray:
        """Operative-period samples from the non-anomalous rows (paper Figure 2)."""
        return np.array(
            [event.operative_period for event in self.events if not event.is_anomalous]
        )

    def inoperative_periods(self) -> np.ndarray:
        """Inoperative-period (outage duration) samples from the non-anomalous rows."""
        return np.array(
            [event.outage_duration for event in self.events if not event.is_anomalous]
        )

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(server_ids, outage_durations, times_between_events)``."""
        ids = np.array([event.server_id for event in self.events], dtype=int)
        outages = np.array([event.outage_duration for event in self.events])
        gaps = np.array([event.time_between_events for event in self.events])
        return ids, outages, gaps

    # ------------------------------------------------------------------ #
    # Summary
    # ------------------------------------------------------------------ #

    def summary(self) -> dict[str, float]:
        """Return headline statistics of the cleaned trace.

        The dictionary contains the number of events, the anomalous fraction,
        and the mean and squared coefficient of variation of the operative
        and inoperative periods — the quantities Section 2 reports.
        """
        operative = self.operative_periods()
        inoperative = self.inoperative_periods()

        def scv(sample: np.ndarray) -> float:
            mean = float(np.mean(sample))
            if mean == 0.0:
                return float("nan")
            return float(np.mean(sample**2) / mean**2 - 1.0)

        return {
            "num_events": float(self.num_events),
            "anomalous_fraction": self.anomalous_fraction,
            "operative_mean": float(np.mean(operative)),
            "operative_scv": scv(operative),
            "inoperative_mean": float(np.mean(inoperative)),
            "inoperative_scv": scv(inoperative),
        }


def operative_periods_from_events(
    outage_durations: Sequence[float], times_between_events: Sequence[float]
) -> np.ndarray:
    """Derive operative periods directly from the two trace fields.

    Convenience function implementing Figure 2 of the paper without building
    a full :class:`BreakdownTrace`; anomalous rows are dropped.
    """
    trace = BreakdownTrace.from_arrays(outage_durations, times_between_events)
    return trace.operative_periods()
