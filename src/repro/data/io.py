"""CSV input/output for breakdown traces.

The original Sun trace arrived as a flat table; downstream users of this
library will have their own outage logs in similar form.  The functions here
read and write the minimal three-column schema used throughout the library:

``server_id, outage_duration, time_between_events``

The reader is tolerant of extra columns (real outage logs carry many) and of
missing server identifiers.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..exceptions import DataError
from .trace import BreakdownTrace

#: The canonical column names written by :func:`write_trace_csv`.
CANONICAL_COLUMNS = ("server_id", "outage_duration", "time_between_events")


def write_trace_csv(trace: BreakdownTrace, path: str | Path) -> Path:
    """Write a breakdown trace to ``path`` in the canonical CSV schema.

    Returns the path written, for convenience in pipelines.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    ids, outages, gaps = trace.as_arrays()
    with destination.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CANONICAL_COLUMNS)
        for row in zip(ids, outages, gaps):
            writer.writerow([int(row[0]), repr(float(row[1])), repr(float(row[2]))])
    return destination


def read_trace_csv(
    path: str | Path,
    *,
    outage_column: str = "outage_duration",
    gap_column: str = "time_between_events",
    server_column: str = "server_id",
) -> BreakdownTrace:
    """Read a breakdown trace from a CSV file.

    Parameters
    ----------
    path:
        Path of the CSV file.  The file must have a header row.
    outage_column, gap_column, server_column:
        Names of the columns holding the outage duration, the time between
        events and (optionally) the server identifier.  The server column is
        optional; all events are assigned to server 0 when it is absent.

    Raises
    ------
    DataError
        If the file is missing, has no header, lacks the required columns or
        contains non-numeric values in them.
    """
    source = Path(path)
    if not source.exists():
        raise DataError(f"trace file does not exist: {source}")
    outages: list[float] = []
    gaps: list[float] = []
    ids: list[int] = []
    with source.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise DataError(f"trace file has no header row: {source}")
        missing = {outage_column, gap_column} - set(reader.fieldnames)
        if missing:
            raise DataError(
                f"trace file {source} is missing required column(s): {sorted(missing)}"
            )
        has_server = server_column in reader.fieldnames
        for line_number, row in enumerate(reader, start=2):
            try:
                outages.append(float(row[outage_column]))
                gaps.append(float(row[gap_column]))
            except (TypeError, ValueError) as exc:
                raise DataError(
                    f"non-numeric value in {source} at line {line_number}"
                ) from exc
            if has_server:
                try:
                    ids.append(int(float(row[server_column])))
                except (TypeError, ValueError) as exc:
                    raise DataError(
                        f"non-numeric server id in {source} at line {line_number}"
                    ) from exc
            else:
                ids.append(0)
    if not outages:
        raise DataError(f"trace file contains no data rows: {source}")
    return BreakdownTrace.from_arrays(
        outage_durations=np.asarray(outages),
        times_between_events=np.asarray(gaps),
        server_ids=np.asarray(ids),
    )
