"""Domain-aware static analysis for the repro solver/service stack.

A stdlib-``ast`` lint engine with a rule registry mirroring the solver
registry idiom: ~7 repo-specific rules (``RPR001`` ... ``RPR007``) encode the
contracts this codebase has historically been bitten by — blocking work on
the service event loop, cache-identity-less distributions (the PR 2
collision bug), float equality in the numerical core, undeclared scenario
support in solver backends, unstable service error codes, swallowed
cancellation and mutable defaults.

Run it as ``repro lint [paths ...]`` (text or ``--format json``, exit code 0
when clean / 1 with findings / 2 on usage errors), or programmatically::

    from repro.analysis import analyze_paths
    report = analyze_paths(["src"])
    assert report.exit_code == 0, report.render_text()

Per-line opt-outs use ``# repro: noqa RPRxxx`` comments; third-party rules
subclass :class:`LintRule` and register through :func:`register_rule`.
"""

from .engine import (
    AnalysisError,
    AnalysisReport,
    analyze_paths,
    analyze_source,
    iter_python_files,
    module_name_for,
)
from .findings import Finding
from .registry import (
    LintRule,
    ModuleContext,
    RuleRegistry,
    default_registry,
    register_rule,
    rule_ids,
    unregister_rule,
)
from .suppressions import SuppressionIndex, suppressed_rules
from .checks import BUILTIN_RULE_IDS, builtin_rules

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "BUILTIN_RULE_IDS",
    "Finding",
    "LintRule",
    "ModuleContext",
    "RuleRegistry",
    "SuppressionIndex",
    "analyze_paths",
    "analyze_source",
    "builtin_rules",
    "default_registry",
    "iter_python_files",
    "module_name_for",
    "register_rule",
    "rule_ids",
    "suppressed_rules",
    "unregister_rule",
]
