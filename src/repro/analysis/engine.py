"""The analysis engine: collect files, run rules, render reports.

:func:`analyze_source` runs the rule set over one in-memory module (what the
fixture tests use); :func:`analyze_paths` walks files and directories and
aggregates an :class:`AnalysisReport` (what ``repro lint`` uses).  Findings on
lines carrying a ``# repro: noqa`` suppression comment are dropped before
reporting (see :mod:`.suppressions`).

Exit-code contract (mirrored by ``repro lint``):

* ``0`` — analysis ran and produced no findings;
* ``1`` — analysis ran and produced findings;
* ``2`` — the analysis itself could not run (unknown rule, unreadable path,
  syntax error in an analysed file) — surfaced as :class:`AnalysisError`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ReproError
from .findings import Finding
from .registry import LintRule, ModuleContext, RuleRegistry, default_registry
from .suppressions import SuppressionIndex

#: Directory names never descended into when expanding directory arguments.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".pytest_cache", ".hypothesis", ".venv", "node_modules"}
)


class AnalysisError(ReproError):
    """The analysis could not run (bad input, unreadable file, syntax error)."""


def module_name_for(path: Path) -> str:
    """The logical dotted module name of a source file.

    Files under a ``src/<package>/...`` or ``<package>/...`` layout resolve to
    their real dotted name by walking ``__init__.py`` packages upwards
    (``src/repro/service/server.py`` → ``repro.service.server``); anything
    else falls back to its stem — scoped rules then simply do not apply,
    which is the safe default for loose fixture files.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted, deduplicated file list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(found.parts):
                    seen.setdefault(found, None)
        elif path.is_file():
            seen.setdefault(path, None)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(seen)


def _parse(source: str, path: str) -> ast.Module:
    try:
        return ast.parse(source, filename=path)
    except SyntaxError as exc:
        location = f"{path}:{exc.lineno or 1}"
        raise AnalysisError(f"cannot analyse {location}: {exc.msg}") from exc


def analyze_source(
    source: str,
    *,
    path: str = "<source>",
    module: str | None = None,
    rules: Sequence[LintRule] | None = None,
    registry: RuleRegistry | None = None,
) -> list[Finding]:
    """Run the rule set over one module's source text.

    ``module`` overrides the logical dotted module name used for rule scoping
    (defaults to the path's inferred name) — fixture tests use this to
    exercise, say, the service-layer rules on a temporary file.
    """
    if rules is None:
        rules = tuple(registry if registry is not None else default_registry())
    tree = _parse(source, path)
    context = ModuleContext(
        path=path,
        module=module if module is not None else module_name_for(Path(path)),
        source=source,
        tree=tree,
    )
    suppressions = SuppressionIndex(source)
    findings = [
        finding
        for rule in rules
        if rule.applies_to(context)
        for finding in rule.check(context)
        if not suppressions.is_suppressed(finding)
    ]
    return sorted(findings)


@dataclass(frozen=True)
class AnalysisReport:
    """The aggregate result of one analysis run."""

    findings: tuple[Finding, ...]
    files_analyzed: int
    rules_run: tuple[str, ...]
    paths: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        """``0`` when clean, ``1`` when any finding survived suppression."""
        return 1 if self.findings else 0

    def counts_by_rule(self) -> dict[str, int]:
        """Finding counts per rule identifier (only rules that fired)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json_payload(self) -> dict[str, object]:
        """The machine-readable form emitted by ``repro lint --format json``."""
        return {
            "tool": "repro lint",
            "paths": list(self.paths),
            "files_analyzed": self.files_analyzed,
            "rules_run": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.findings],
            "counts_by_rule": self.counts_by_rule(),
            "exit_code": self.exit_code,
        }

    def render_text(self) -> str:
        """The human-readable report: one line per finding plus a summary."""
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            by_rule = ", ".join(
                f"{rule}: {count}" for rule, count in self.counts_by_rule().items()
            )
            lines.append("")
            lines.append(
                f"{len(self.findings)} finding(s) in {self.files_analyzed} file(s) ({by_rule})"
            )
        else:
            lines.append(
                f"clean: no findings in {self.files_analyzed} file(s) "
                f"({len(self.rules_run)} rules)"
            )
        return "\n".join(lines)


def analyze_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    registry: RuleRegistry | None = None,
) -> AnalysisReport:
    """Analyse files and directories and aggregate a report.

    ``select``/``ignore`` filter the rule set by identifier (unknown
    identifiers raise, so a typo never silently disables a gate).
    """
    registry = registry if registry is not None else default_registry()
    rules = registry.select(select, ignore)
    paths = [Path(path) for path in paths]
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for file in files:
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisError(f"cannot read {file}: {exc}") from exc
        findings.extend(analyze_source(source, path=str(file), rules=rules))
    return AnalysisReport(
        findings=tuple(sorted(findings)),
        files_analyzed=len(files),
        rules_run=tuple(rule.rule_id for rule in rules),
        paths=tuple(str(path) for path in paths),
    )
