"""RPR001 — blocking calls inside ``async def`` functions.

The service layer runs solves through an asyncio event loop; one blocking
call on the loop thread stalls the accept loop, every batch timer and the
health endpoint for its whole duration.  This rule flags, inside any
``async def`` body (nested sync helpers excluded — they may legitimately run
off-loop):

* ``time.sleep`` — use ``await asyncio.sleep``;
* anything in ``subprocess.*``, plus ``os.system``/``os.popen``;
* the synchronous solver facade, ``solve(...)`` / ``solve_many(...)`` —
  use :func:`repro.solvers.solve_many_async` or an executor;
* synchronous file I/O: the ``open`` builtin and the
  ``read_text``/``write_text``/``read_bytes``/``write_bytes`` convenience
  methods.

Imports are resolved textually, so ``from time import sleep`` and
``import subprocess as sp`` do not evade the rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asthelpers import dotted_name, import_table, resolve_call_target, walk_body
from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: Fully-qualified call targets that block the event loop outright.
_BLOCKING_TARGETS = frozenset({"time.sleep", "os.system", "os.popen"})

#: Module roots whose every call is process-spawning and blocking.
_BLOCKING_ROOTS = ("subprocess.",)

#: Final segments of the synchronous solver facade.
_SYNC_FACADE = frozenset({"solve", "solve_many"})

#: Method names of synchronous convenience file I/O.
_FILE_IO_METHODS = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})


class BlockingCallRule(LintRule):
    """Flag event-loop-blocking calls inside ``async def`` bodies."""

    rule_id = "RPR001"
    title = "blocking call inside an async function"
    rationale = (
        "one blocking call on the event loop stalls the whole service; "
        "use solve_many_async, asyncio.sleep or an executor"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        imports = import_table(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_function(context, node, imports)

    def _check_async_function(
        self,
        context: ModuleContext,
        function: ast.AsyncFunctionDef,
        imports: dict[str, str],
    ) -> Iterator[Finding]:
        for node in walk_body(function.body):
            if not isinstance(node, ast.Call):
                continue
            reason = self._blocking_reason(node, imports)
            if reason is not None:
                yield context.finding(
                    self,
                    node,
                    f"{reason} inside 'async def {function.name}'; blocking work "
                    "stalls the event loop — use solve_many_async / asyncio.sleep "
                    "/ an executor",
                )

    def _blocking_reason(self, call: ast.Call, imports: dict[str, str]) -> str | None:
        target = resolve_call_target(call, imports)
        if target is None:
            return None
        if target in _BLOCKING_TARGETS:
            return f"blocking call {target}()"
        if any(target.startswith(root) for root in _BLOCKING_ROOTS):
            return f"blocking subprocess call {target}()"
        literal = dotted_name(call.func) or target
        final = target.rsplit(".", 1)[-1]
        if final in _SYNC_FACADE:
            return f"synchronous solver call {literal}()"
        if target == "open" or literal == "open":
            return "synchronous file I/O open()"
        if final in _FILE_IO_METHODS and "." in literal:
            return f"synchronous file I/O {literal}()"
        return None
