"""RPR011 — ``time.time()`` used for duration measurement in service/obs code.

The wall clock is not a stopwatch: ``time.time()`` jumps backwards and
forwards under NTP slew, manual clock changes and leap-second smearing, so a
difference of two wall-clock reads can be negative or wildly wrong.  Every
duration that feeds a latency histogram, an SLO tracker or a retry budget in
``repro.service`` and ``repro.obs`` must come from the monotonic sources —
``time.monotonic()`` or ``time.perf_counter()`` — which exist for exactly
this purpose.  ``time.time()`` remains the right call for *timestamps*:
values that are displayed, logged or compared across processes, never
subtracted from one another.

Flagged, anywhere in a ``repro.service.*`` or ``repro.obs.*`` module:

* a ``time.time()`` call as either operand of a binary ``-`` (including the
  aliased forms reached via ``from time import time`` or
  ``import time as clock``), or as the value of a ``-=``;
* a local name assigned from ``time.time()`` and later used as an operand of
  a ``-``/``-=`` within the same function scope.

Not flagged (near misses):

* bare wall-clock stamps that are never subtracted — ``started_at =
  time.time()`` recorded on a trace, the uptime anchor kept for display;
* monotonic arithmetic — ``time.monotonic() - started``,
  ``time.perf_counter() - t0``;
* wall-clock arithmetic other than subtraction (``time.time() + ttl`` is an
  absolute deadline, not a duration);
* any module outside the service/obs packages.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asthelpers import import_table, resolve_call_target, walk_body
from ..findings import Finding
from ..registry import LintRule, ModuleContext


def _is_wall_clock_call(node: ast.expr, imports: dict[str, str]) -> bool:
    """Whether an expression is a (possibly aliased) ``time.time()`` call."""
    return isinstance(node, ast.Call) and resolve_call_target(node, imports) == "time.time"


class WallClockDurationRule(LintRule):
    """Flag durations measured with the wall clock in service/obs code."""

    rule_id = "RPR011"
    title = "time.time() used for duration measurement in the service/obs layers"
    rationale = (
        "the wall clock jumps under NTP slew and clock changes, so subtracting "
        "time.time() reads yields corrupt durations; latency and timeout "
        "arithmetic in repro.service/repro.obs must use time.monotonic() or "
        "time.perf_counter(), keeping time.time() for display-only timestamps"
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return bool({"service", "obs"} & set(context.module_parts))

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        imports = import_table(context.tree)
        yield from self._check_scope(context, context.tree.body, imports)
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(context, node.body, imports)

    def _check_scope(
        self, context: ModuleContext, body: list[ast.stmt], imports: dict[str, str]
    ) -> Iterator[Finding]:
        """Check one lexical scope, not descending into nested functions.

        Wall-clock names are collected scope-wide first so an assignment
        after the subtraction (loop bodies re-stamping a variable) is still
        seen; a nested function is its own scope and gets its own pass.
        """
        wall_names: set[str] = set()
        for statement in walk_body(body):
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                value, targets = statement.value, statement.targets
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                value, targets = statement.value, [statement.target]
            if value is not None and _is_wall_clock_call(value, imports):
                wall_names.update(
                    target.id for target in targets if isinstance(target, ast.Name)
                )
        for node in walk_body(body):
            operands: list[ast.expr] = []
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                operands = [node.left, node.right]
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Sub):
                operands = [node.value]
            for operand in operands:
                if _is_wall_clock_call(operand, imports):
                    yield context.finding(
                        self,
                        node,
                        "time.time() in a subtraction measures a duration with "
                        "the wall clock, which jumps under NTP slew; use "
                        "time.monotonic() or time.perf_counter()",
                    )
                elif isinstance(operand, ast.Name) and operand.id in wall_names:
                    yield context.finding(
                        self,
                        node,
                        f"{operand.id!r} holds a time.time() stamp and is "
                        "subtracted here, measuring a duration with the wall "
                        "clock; stamp it with time.monotonic() or "
                        "time.perf_counter() instead",
                    )
