"""RPR004 — solver backends touching scenario models without a declared contract.

Scenario models (heterogeneous server groups, limited repair crews) fall
outside the state-space structure of some analytical backends; the facade's
fallback chain relies on those backends *either* declaring their position
(a class-level ``supports_scenarios`` attribute) *or* raising
:class:`repro.exceptions.UnsupportedScenarioError` so the chain can skip to a
scenario-capable backend.  A backend that inspects scenario-ness ad hoc —
``isinstance(model, ScenarioModel)``, ``is_scenario_model(model)``,
``model.is_scenario`` — without doing either tends to half-support scenarios:
it branches on them, silently returns wrong-shaped results, and the fallback
chain never learns it should have skipped it.

The rule inspects every :class:`~repro.solvers.base.Solver` subclass (bases
are resolved transitively within the analysed module): if its ``solve`` or
``supports`` methods reference a scenario marker, the class — or one of its
in-module ancestors — must declare ``supports_scenarios`` or raise
``UnsupportedScenarioError``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asthelpers import assigned_class_names, class_methods, last_segment
from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: Names whose appearance in a method body means "this backend inspects
#: scenario models".
_SCENARIO_MARKERS = frozenset({"ScenarioModel", "is_scenario_model", "is_scenario"})

#: Methods whose bodies are inspected for scenario markers.
_DISPATCH_METHODS = frozenset({"solve", "supports"})


def _references_scenarios(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Name) and node.id in _SCENARIO_MARKERS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _SCENARIO_MARKERS:
            return True
    return False


def _raises_unsupported(node: ast.ClassDef) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Raise) and child.exc is not None:
            exc = child.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if last_segment(target) == "UnsupportedScenarioError":
                return True
    return False


class ScenarioContractRule(LintRule):
    """Flag solver backends with an undeclared scenario contract."""

    rule_id = "RPR004"
    title = "solver backend touches scenario models without declaring support"
    rationale = (
        "fallback chains need backends to declare supports_scenarios or raise "
        "UnsupportedScenarioError; ad-hoc scenario branching half-supports them"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in classes.values():
            if not self._is_solver_class(node, classes):
                continue
            touching = [
                method
                for method in class_methods(node)
                if method.name in _DISPATCH_METHODS and _references_scenarios(method)
            ]
            if not touching:
                continue
            if self._declares_contract(node, classes):
                continue
            methods = ", ".join(sorted(method.name for method in touching))
            yield context.finding(
                self,
                node,
                f"solver backend {node.name!r} inspects scenario models in {methods}() "
                "but neither declares a class-level 'supports_scenarios' nor raises "
                "UnsupportedScenarioError; fallback chains cannot skip it safely",
            )

    def _is_solver_class(self, node: ast.ClassDef, classes: dict[str, ast.ClassDef]) -> bool:
        for base in node.bases:
            name = last_segment(base)
            if name is None:
                continue
            if name == "Solver" or name.endswith("Solver"):
                return True
            if name in classes and name != node.name:
                if self._is_solver_class(classes[name], classes):
                    return True
        return False

    def _declares_contract(self, node: ast.ClassDef, classes: dict[str, ast.ClassDef]) -> bool:
        if "supports_scenarios" in assigned_class_names(node) or _raises_unsupported(node):
            return True
        for base in node.bases:
            name = last_segment(base)
            if name in classes and name != node.name:
                if self._declares_contract(classes[name], classes):
                    return True
        return False
