"""RPR007 — mutable default argument values.

A default value is evaluated once, at ``def`` time; a list/dict/set default
is therefore *shared between every call*, and the first caller that mutates
it changes the default for everyone after it.  In a library whose models and
policies are cached by value this is a particularly nasty bug class: a
mutated default silently changes cache keys and solver inputs across
unrelated call sites.  Use ``None`` and materialise inside the body (or a
``dataclasses.field(default_factory=...)`` for dataclasses — those are not
flagged, the factory is re-evaluated per instance).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asthelpers import dotted_name
from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: Constructor calls whose zero-state results are mutable.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)

#: Literal/display nodes that build a fresh mutable object.
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _describe(node: ast.expr) -> str | None:
    """Why a default expression is mutable, or ``None`` when it is fine."""
    if isinstance(node, _MUTABLE_LITERALS):
        return f"a {type(node).__name__.lower()} literal"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CONSTRUCTORS:
            return f"a {name}() call"
    return None


class MutableDefaultRule(LintRule):
    """Flag function parameters defaulting to a shared mutable object."""

    rule_id = "RPR007"
    title = "mutable default argument"
    rationale = (
        "defaults are evaluated once and shared across calls; a mutated default "
        "silently corrupts later calls (and value-keyed caches)"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            positional = arguments.posonlyargs + arguments.args
            pairs = list(
                zip(reversed(positional), reversed(arguments.defaults))
            ) + [
                (argument, default)
                for argument, default in zip(arguments.kwonlyargs, arguments.kw_defaults)
                if default is not None
            ]
            for argument, default in pairs:
                reason = _describe(default)
                if reason is not None:
                    yield context.finding(
                        self,
                        default,
                        f"parameter {argument.arg!r} of {node.name!r} defaults to "
                        f"{reason}, shared across every call; default to None and "
                        "materialise inside the body",
                    )
