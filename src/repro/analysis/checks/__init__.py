"""The built-in lint rules, one module per rule.

:func:`builtin_rules` returns fresh instances in identifier order; the
default :class:`~repro.analysis.registry.RuleRegistry` is populated from it.

==========  ==================================================================
Rule        Contract it enforces
==========  ==================================================================
``RPR001``  no blocking calls (``time.sleep``, ``subprocess``, sync
            ``solve``/``solve_many``, file I/O) inside ``async def``
``RPR002``  every ``Distribution`` subclass defines ``parameter_key()``
``RPR003``  no float-literal ``==``/``!=`` in the numerical core
``RPR004``  solver backends touching scenario models declare
            ``supports_scenarios`` or raise ``UnsupportedScenarioError``
``RPR005``  service ``error.code`` values are literal, kebab-case and unique
``RPR006``  no swallowed ``CancelledError`` / bare ``except`` in the service
``RPR007``  no mutable default argument values
``RPR008``  no square dense generator allocations over the global mode space
            in the CTMC hot paths (``markov``/``scenarios``/``transient``)
``RPR009``  no multiprocessing primitives (``Process``/``Pipe``/``Queue``…)
            created inside ``async def`` bodies in the service layer
``RPR010``  no bare ``print()`` or stdlib root-logger calls in the service
            and obs layers (telemetry flows through the structured logger)
``RPR011``  no ``time.time()`` in duration arithmetic in the service and obs
            layers (durations come from ``monotonic``/``perf_counter``)
==========  ==================================================================
"""

from __future__ import annotations

from ..registry import LintRule
from .blocking import BlockingCallRule
from .cancellation import SwallowedCancellationRule
from .defaults import MutableDefaultRule
from .density import DenseGeneratorRule
from .distributions import DistributionParameterKeyRule
from .errors import ErrorCodeStabilityRule
from .floats import FloatEqualityRule
from .printing import StructuredLoggingRule
from .processes import AsyncMultiprocessingRule
from .scenarios import ScenarioContractRule
from .walltime import WallClockDurationRule


def builtin_rules() -> tuple[LintRule, ...]:
    """Fresh instances of the built-in rules, in identifier order."""
    return (
        BlockingCallRule(),
        DistributionParameterKeyRule(),
        FloatEqualityRule(),
        ScenarioContractRule(),
        ErrorCodeStabilityRule(),
        SwallowedCancellationRule(),
        MutableDefaultRule(),
        DenseGeneratorRule(),
        AsyncMultiprocessingRule(),
        StructuredLoggingRule(),
        WallClockDurationRule(),
    )


#: The built-in rule identifiers, in the order reports list them.
BUILTIN_RULE_IDS = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR006",
    "RPR007",
    "RPR008",
    "RPR009",
    "RPR010",
    "RPR011",
)

__all__ = [
    "BUILTIN_RULE_IDS",
    "AsyncMultiprocessingRule",
    "BlockingCallRule",
    "DenseGeneratorRule",
    "DistributionParameterKeyRule",
    "ErrorCodeStabilityRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "ScenarioContractRule",
    "StructuredLoggingRule",
    "SwallowedCancellationRule",
    "WallClockDurationRule",
    "builtin_rules",
]
