"""RPR008 — dense generator allocation on a CTMC hot path.

The numerical core assembles every level x mode chain sparsely through
:mod:`repro.markov.kernels`; a mode space of ``s`` global modes has ``O(s)``
transitions, so a dense ``s x s`` array wastes quadratic memory and turns
every downstream product into a dense one.  The regression this rule guards
against is the easy-to-write legacy pattern

.. code-block:: python

    matrix = np.zeros((self.num_modes, self.num_modes))
    for transition in transitions:
        matrix[transition.source, transition.target] += transition.rate

which is exactly how the generators used to be built — fine at ``s ~ 100``,
fatal at the lumped scenario sizes (``s > 1000`` modes, ``> 10^5`` chain
states) the kernel layer exists for.  The rule is scoped to the hot packages
— ``markov``, ``scenarios``, ``transient`` — and flags square dense
allocations (``zeros``/``empty``/``ones``/``full``) whose two dimensions are
the *same* expression over a global mode/state count (``num_modes``,
``num_states``, ``num_levels``).  Build a ``scipy.sparse`` matrix (COO/CSR)
instead, or assemble through the kernel layer; a deliberate small dense
matrix can opt out per line with ``# repro: noqa RPR008``.

Per-group *local* matrices (dimensioned by phase counts, not by the global
mode space) are not flagged: their dimensions never mention the global
counts.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: The numpy allocation functions the rule watches.
_ALLOCATORS = frozenset({"zeros", "empty", "ones", "full"})

#: Identifiers that denote a *global* mode/state count; a square allocation
#: over one of these is the dense-generator pattern.
_GLOBAL_COUNT_NAMES = frozenset({"num_modes", "num_states", "num_levels"})

#: Module segments the rule is scoped to (the CTMC hot paths).
_HOT_PACKAGES = frozenset({"markov", "scenarios", "transient"})


def _called_allocator(node: ast.Call) -> str | None:
    """The allocator name of a ``np.zeros(...)``-style call, else ``None``."""
    function = node.func
    if isinstance(function, ast.Attribute) and function.attr in _ALLOCATORS:
        return function.attr
    if isinstance(function, ast.Name) and function.id in _ALLOCATORS:
        return function.id
    return None


def _mentions_global_count(node: ast.expr) -> bool:
    """Whether an expression references a global mode/state count identifier."""
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr in _GLOBAL_COUNT_NAMES:
            return True
        if isinstance(child, ast.Name) and child.id in _GLOBAL_COUNT_NAMES:
            return True
    return False


class DenseGeneratorRule(LintRule):
    """Flag square dense allocations over the global mode space."""

    rule_id = "RPR008"
    title = "dense generator allocation on a CTMC hot path"
    rationale = (
        "mode spaces have O(s) transitions; an s x s dense array wastes quadratic "
        "memory and defeats the sparse kernel layer — assemble through "
        "repro.markov.kernels or scipy.sparse instead"
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return bool(_HOT_PACKAGES.intersection(context.module_parts))

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            allocator = _called_allocator(node)
            if allocator is None or not node.args:
                continue
            shape = node.args[0]
            if not isinstance(shape, (ast.Tuple, ast.List)) or len(shape.elts) != 2:
                continue
            first, second = shape.elts
            if ast.dump(first) != ast.dump(second):
                continue
            if not _mentions_global_count(first):
                continue
            yield context.finding(
                self,
                node,
                f"square dense '{allocator}' allocation over the global mode space; "
                "assemble the matrix sparsely (repro.markov.kernels / scipy.sparse) "
                "or opt out with # repro: noqa RPR008 for a deliberately small "
                "dense matrix",
            )
