"""RPR005 — duplicate or unstable ``error.code`` values in service errors.

``error.code`` is part of the wire protocol: clients switch on it, the
``/stats`` endpoint aggregates by it, and the README pins it as "never
reworded".  Two failure classes sharing a code are indistinguishable to every
client; a code computed at runtime (an f-string, a concatenation, an
attribute lookup) can drift between releases without any diff on the literal.

The rule inspects every class in the module that is (transitively, within
the module) a ``ServiceError`` subclass and validates its class-level
``code`` assignment:

* the value must be a **string literal** — anything computed is unstable;
* the literal must be lower-kebab-case (``queue-full``, ``bad-json``) — the
  protocol's established vocabulary;
* no two classes in the module may pin the **same** code.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ..asthelpers import assigned_class_names, last_segment
from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: The protocol's code shape: lower-case kebab words.
_CODE_SHAPE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


class ErrorCodeStabilityRule(LintRule):
    """Flag duplicate or non-literal service error codes."""

    rule_id = "RPR005"
    title = "duplicate or unstable service error.code"
    rationale = (
        "clients switch on error.code; duplicated or computed codes break the "
        "wire protocol silently"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.ClassDef)
        }
        seen: dict[str, str] = {}
        for node in classes.values():
            if not self._is_service_error(node, classes):
                continue
            assigned = assigned_class_names(node)
            value = assigned.get("code")
            if value is None:
                continue
            if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
                yield context.finding(
                    self,
                    node,
                    f"error class {node.name!r} computes its 'code' at runtime; codes "
                    "are wire protocol and must be string literals",
                )
                continue
            code = value.value
            if not _CODE_SHAPE.match(code):
                yield context.finding(
                    self,
                    node,
                    f"error class {node.name!r} pins code {code!r}, which is not "
                    "lower-kebab-case; the protocol's code vocabulary is "
                    "'words-joined-by-dashes'",
                )
            if code in seen:
                yield context.finding(
                    self,
                    node,
                    f"error class {node.name!r} duplicates code {code!r} already pinned "
                    f"by {seen[code]!r}; clients switching on error.code cannot "
                    "distinguish the two failures",
                )
            else:
                seen[code] = node.name

    def _is_service_error(self, node: ast.ClassDef, classes: dict[str, ast.ClassDef]) -> bool:
        if node.name == "ServiceError":
            return True
        for base in node.bases:
            name = last_segment(base)
            if name == "ServiceError":
                return True
            if name in classes and name != node.name:
                if self._is_service_error(classes[name], classes):
                    return True
        return False
