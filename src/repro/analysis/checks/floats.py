"""RPR003 — float-literal equality comparisons in the numerical core.

``x == 0.1`` is almost never what a numerical module means: the literal is
not exactly representable, the left-hand side carries accumulated rounding
error, and the comparison silently becomes "false forever" (or worse, "true
by accident").  The rule is scoped to the numerical packages — ``markov``,
``transient``, ``queueing``, ``distributions`` — and flags ``==``/``!=``
comparisons against non-sentinel float literals; use ``math.isclose``,
``numpy.isclose`` or an explicit tolerance instead.

*Sentinel* values are exempt: ``0.0``, ``1.0``, ``-1.0`` and infinities are
exactly representable and conventionally used as markers ("zero rate means
the transition is absent", "SCV == 1 means exponential"), so comparing
against them is legitimate.  A genuine sentinel comparison against any other
value can opt out per line with ``# repro: noqa RPR003``.
"""

from __future__ import annotations

import ast
import math
from collections.abc import Iterator

from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: Exactly-representable marker values that equality may legitimately test.
_SENTINELS = (0.0, 1.0, -1.0)

#: Module segments the rule is scoped to (the numerical core).
_NUMERICAL_PACKAGES = frozenset({"markov", "transient", "queueing", "distributions"})


def _float_literal(node: ast.expr) -> float | None:
    """The float value of a (possibly sign-wrapped) float literal, else None."""
    sign = 1.0
    while isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        if isinstance(node.op, ast.USub):
            sign = -sign
        node = node.operand
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return sign * node.value
    return None


class FloatEqualityRule(LintRule):
    """Flag ``==``/``!=`` against non-sentinel float literals."""

    rule_id = "RPR003"
    title = "float-literal equality comparison in a numerical module"
    rationale = (
        "accumulated rounding error makes exact float equality silently wrong; "
        "compare with math.isclose or an explicit tolerance"
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return bool(_NUMERICAL_PACKAGES.intersection(context.module_parts))

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for operand in (left, right):
                    value = _float_literal(operand)
                    if value is None or math.isinf(value) or value in _SENTINELS:
                        continue
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield context.finding(
                        self,
                        node,
                        f"float equality comparison '{symbol} {value!r}' in a numerical "
                        "module; use math.isclose/numpy.isclose or an explicit "
                        "tolerance (# repro: noqa RPR003 for a true sentinel)",
                    )
                    break
