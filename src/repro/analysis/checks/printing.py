"""RPR010 — bare ``print()`` / root-logger calls in the service and obs layers.

The serving tier and the observability package own the process's telemetry
contract: every operational event must flow through
:class:`repro.obs.StructuredLogger` so that ``--log-format json`` yields one
machine-parseable object per line and every record can carry its
``trace_id``.  A stray ``print()`` (or a stdlib ``logging.info(...)``-style
call on the *root* logger) bypasses that contract — it ignores the
configured format and sink, interleaves raw text into JSON log streams, and
drops trace correlation.

Flagged, anywhere in a ``repro.service.*`` or ``repro.obs.*`` module:

* bare ``print(...)`` calls (the builtin, not a local attribute such as
  ``console.print``);
* stdlib root-logger level calls — ``logging.debug/info/warning/warn/
  error/critical/exception/log(...)``, including the same functions reached
  via ``from logging import info`` or ``import logging as log`` aliasing.

Not flagged (near misses):

* bound-logger calls such as ``self._log.info(...)`` or ``logger.error(...)``
  — those go through :func:`repro.obs.get_logger` and honour the config;
* ``logging.getLogger(...)`` and other non-emitting ``logging`` attributes;
* ``print()`` in any module outside the service/obs packages (the CLI's
  tables are its user interface, not telemetry).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asthelpers import import_table, resolve_call_target
from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: Emitting calls on the stdlib root logger (``logging.<name>(...)``).
_ROOT_LOGGER_CALLS = frozenset(
    {"debug", "info", "warning", "warn", "error", "critical", "exception", "log"}
)


class StructuredLoggingRule(LintRule):
    """Flag output that bypasses the structured logger in service/obs code."""

    rule_id = "RPR010"
    title = "bare print() or stdlib root-logger call in the service/obs layers"
    rationale = (
        "service and obs modules must emit through repro.obs.StructuredLogger "
        "so --log-format json stays machine-parseable and records keep their "
        "trace_id; print() and logging.<level>() bypass both"
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return bool({"service", "obs"} & set(context.module_parts))

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        imports = import_table(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            if target == "print":
                yield context.finding(
                    self,
                    node,
                    "bare print() in a service/obs module bypasses the "
                    "structured logger; use repro.obs.get_logger(...) so the "
                    "record honours --log-format and carries a trace_id",
                )
            elif (
                target.startswith("logging.")
                and target.count(".") == 1
                and target.rsplit(".", 1)[-1] in _ROOT_LOGGER_CALLS
            ):
                yield context.finding(
                    self,
                    node,
                    f"stdlib root-logger call {target}() in a service/obs "
                    "module bypasses the structured logger; use "
                    "repro.obs.get_logger(...) instead",
                )
