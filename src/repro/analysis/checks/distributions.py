"""RPR002 — ``Distribution`` subclass without ``parameter_key``.

The PR 2 cache-collision bug class: solution-cache keys derive a
distribution's identity from :meth:`repro.distributions.Distribution.parameter_key`;
a subclass that does not implement it falls back to a ``repr``/moment-based
key, and two distinct parameterisations whose reprs collide silently share a
cache entry — the solver then returns the *wrong model's* solution.  This
rule flags every class with ``Distribution`` among its bases (directly, or
through an intermediate base defined in the same module) that neither
defines ``parameter_key`` nor inherits one from such an in-module base.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asthelpers import assigned_class_names, class_methods, last_segment
from ..findings import Finding
from ..registry import LintRule, ModuleContext


def _defines_parameter_key(node: ast.ClassDef) -> bool:
    if any(method.name == "parameter_key" for method in class_methods(node)):
        return True
    return "parameter_key" in assigned_class_names(node)


class DistributionParameterKeyRule(LintRule):
    """Flag distribution subclasses missing a cache-identity method."""

    rule_id = "RPR002"
    title = "Distribution subclass without parameter_key()"
    rationale = (
        "repr-keyed distributions collided in the solution cache (fixed in PR 2); "
        "parameter_key() is the only collision-proof cache identity"
    )

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.ClassDef)
        }
        for node in classes.values():
            if not self._is_distribution_subclass(node, classes):
                continue
            if self._has_parameter_key(node, classes):
                continue
            yield context.finding(
                self,
                node,
                f"Distribution subclass {node.name!r} does not define parameter_key(); "
                "the repr-based fallback cache key collides across parameterisations "
                "(the PR 2 cache-collision bug class)",
            )

    def _is_distribution_subclass(
        self, node: ast.ClassDef, classes: dict[str, ast.ClassDef]
    ) -> bool:
        for base in node.bases:
            name = last_segment(base)
            if name == "Distribution":
                return True
            if name in classes and name != node.name:
                if self._is_distribution_subclass(classes[name], classes):
                    return True
        return False

    def _has_parameter_key(
        self, node: ast.ClassDef, classes: dict[str, ast.ClassDef]
    ) -> bool:
        if _defines_parameter_key(node):
            return True
        for base in node.bases:
            name = last_segment(base)
            if name in classes and name != node.name:
                if self._has_parameter_key(classes[name], classes):
                    return True
        return False
