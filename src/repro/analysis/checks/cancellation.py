"""RPR006 — swallowed ``asyncio.CancelledError`` / bare ``except`` in the service layer.

Cancellation is the service's shutdown signal: the loop teardown cancels
connection handlers and batch tasks, and each of them is expected to let the
:class:`asyncio.CancelledError` propagate once its cleanup ran.  A handler
that catches it (directly, through ``BaseException``, or with a bare
``except:``) and does not re-raise turns "shut down now" into "keep running",
which is exactly how services hang on Ctrl-C.  Bare ``except:`` is flagged
unconditionally — besides cancellation it also eats ``KeyboardInterrupt``
and ``SystemExit``.

Scoped to modules inside a ``service`` package.  A teardown path that has a
genuine reason to absorb cancellation can opt out per line with
``# repro: noqa RPR006`` — the comment then documents the exception.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asthelpers import last_segment
from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: Exception names whose handlers capture cancellation.
_CANCELLATION_CATCHERS = frozenset({"CancelledError", "BaseException"})


def _caught_names(handler: ast.ExceptHandler) -> tuple[str, ...]:
    if handler.type is None:
        return ()
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for node in nodes:
        name = last_segment(node)
        if name is not None:
            names.append(name)
    return tuple(names)


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


class SwallowedCancellationRule(LintRule):
    """Flag handlers that absorb cancellation (or everything) silently."""

    rule_id = "RPR006"
    title = "swallowed CancelledError or bare except in the service layer"
    rationale = (
        "catching CancelledError without re-raising turns shutdown into a hang; "
        "bare except additionally eats KeyboardInterrupt/SystemExit"
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return "service" in context.module_parts

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield context.finding(
                    self,
                    node,
                    "bare 'except:' swallows CancelledError, KeyboardInterrupt and "
                    "SystemExit; catch specific exceptions (or 'except Exception')",
                )
                continue
            caught = _CANCELLATION_CATCHERS.intersection(_caught_names(node))
            if caught and not _reraises(node):
                names = ", ".join(sorted(caught))
                yield context.finding(
                    self,
                    node,
                    f"'except {names}' without a re-raise swallows task cancellation; "
                    "re-raise after cleanup (or # repro: noqa RPR006 with a "
                    "justification for a deliberate teardown absorb)",
                )
