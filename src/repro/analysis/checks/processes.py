"""RPR009 — multiprocessing primitives created inside ``async def`` bodies.

Spawning a worker process (or building the ``Queue``/``Pipe`` plumbing to
talk to one) is a heavyweight, blocking operation: ``spawn`` forks/execs a
fresh interpreter and re-imports the library, and even the pipe handshake
does blocking file-descriptor work.  Doing any of that on the event loop
stalls the accept loop, every batch timer and the health endpoint for the
full startup time — which for this library (~1s of imports per worker) is
orders of magnitude beyond the loop's latency budget.

The sharded serving tier therefore keeps all pool management in *sync*
helpers invoked off-loop (``run_in_executor``); this rule pins that contract
for every service module.  Flagged, inside any ``async def`` body (nested
sync helpers excluded — they may legitimately run off-loop):

* ``multiprocessing.Process(...)``, ``multiprocessing.Pipe(...)``,
  ``multiprocessing.Queue``/``SimpleQueue``/``JoinableQueue(...)``,
  ``multiprocessing.Pool(...)``, ``multiprocessing.Manager(...)``;
* the same constructors reached through ``from multiprocessing import
  Process`` or ``import multiprocessing as mp`` aliasing (the import table
  sees through both).

Constructors reached through an opaque context object
(``ctx = multiprocessing.get_context(...); ctx.Pipe()``) cannot be resolved
textually and are not flagged — keep context use inside sync helpers too.

Scoped to modules inside a ``service`` package, like RPR005/RPR006.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asthelpers import import_table, resolve_call_target, walk_body
from ..findings import Finding
from ..registry import LintRule, ModuleContext

#: Final name segments that construct multiprocessing primitives.
_PRIMITIVE_NAMES = frozenset(
    {"Process", "Queue", "SimpleQueue", "JoinableQueue", "Pipe", "Pool", "Manager"}
)

#: Module roots whose primitives the rule recognises.
_MP_ROOTS = ("multiprocessing.", "multiprocessing.context.")


class AsyncMultiprocessingRule(LintRule):
    """Flag multiprocessing primitive creation on the event loop."""

    rule_id = "RPR009"
    title = "multiprocessing primitive created inside an async function"
    rationale = (
        "spawning processes or building their pipes/queues blocks the event "
        "loop for the whole fork/exec handshake; do pool management in sync "
        "helpers invoked via run_in_executor"
    )

    def applies_to(self, context: ModuleContext) -> bool:
        return "service" in context.module_parts

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        imports = import_table(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_function(context, node, imports)

    def _check_async_function(
        self,
        context: ModuleContext,
        function: ast.AsyncFunctionDef,
        imports: dict[str, str],
    ) -> Iterator[Finding]:
        for node in walk_body(function.body):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            final = target.rsplit(".", 1)[-1]
            if final not in _PRIMITIVE_NAMES:
                continue
            if not any(target.startswith(root) for root in _MP_ROOTS):
                continue
            yield context.finding(
                self,
                node,
                f"multiprocessing primitive {target}() created inside "
                f"'async def {function.name}'; process/pipe/queue creation blocks "
                "the event loop — move pool management into a sync helper and "
                "invoke it via run_in_executor",
            )
