"""The lint-rule registry: name-based dispatch, mirroring the solver registry.

Rules are :class:`LintRule` subclasses registered under their ``rule_id``
(``RPR001`` ... ``RPR007`` for the built-ins).  The registry preserves
registration order — which is the order reports list rules in — and supports
third-party registration through :func:`register_rule`, exactly like
:func:`repro.solvers.register_solver` does for solver backends.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..exceptions import ParameterError
from .findings import Finding


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one analysed module.

    ``module`` is the *logical* dotted module name (``repro.service.server``);
    scoped rules filter on it through :meth:`LintRule.applies_to`, and tests
    override it to exercise scoped rules on fixture files living anywhere.
    """

    #: Display path of the file (what findings report).
    path: str
    #: Logical dotted module name used for rule scoping.
    module: str
    #: The raw source text.
    source: str
    #: The parsed abstract syntax tree of ``source``.
    tree: ast.Module

    @property
    def module_parts(self) -> tuple[str, ...]:
        """The dotted module name split into its segments."""
        return tuple(self.module.split(".")) if self.module else ()

    def finding(self, rule: "LintRule", node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``, attributed to ``rule``."""
        return Finding(
            path=self.path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)),
            rule=rule.rule_id,
            message=message,
        )


class LintRule(abc.ABC):
    """One static-analysis rule, dispatchable by identifier.

    Subclasses pin :attr:`rule_id` (the stable ``RPRxxx`` identifier used in
    reports, ``--select``/``--ignore`` filters and ``# repro: noqa``
    suppressions), :attr:`title` (the one-line summary shown by
    ``repro lint --list-rules``) and :attr:`rationale` (why the rule exists in
    this repository), and implement :meth:`check`.
    """

    #: Stable identifier of the rule, e.g. ``"RPR001"``.
    rule_id: str = ""
    #: One-line summary of what the rule flags.
    title: str = ""
    #: Why the rule exists — ideally naming the bug class it prevents.
    rationale: str = ""

    def applies_to(self, context: ModuleContext) -> bool:
        """Whether this rule runs over ``context`` (default: every module)."""
        return True

    @abc.abstractmethod
    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield every finding of this rule in the module."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} rule_id={self.rule_id!r}>"


class RuleRegistry:
    """A mapping from rule identifier to :class:`LintRule` instance."""

    def __init__(self, rules: Iterable[LintRule] = ()) -> None:
        self._rules: dict[str, LintRule] = {}
        for rule in rules:
            self.register(rule)

    def register(self, rule: LintRule, *, replace: bool = False) -> LintRule:
        """Add a rule under its :attr:`~LintRule.rule_id`."""
        rule_id = getattr(rule, "rule_id", "")
        if not isinstance(rule_id, str) or not rule_id:
            raise ParameterError(
                f"rule {rule!r} has no usable identifier; set a non-empty `rule_id`"
            )
        if not replace and rule_id in self._rules:
            raise ParameterError(
                f"a rule with id {rule_id!r} is already registered; "
                "pass replace=True to overwrite it"
            )
        self._rules[rule_id] = rule
        return rule

    def unregister(self, rule_id: str) -> LintRule:
        """Remove and return the rule registered under ``rule_id``."""
        try:
            return self._rules.pop(rule_id)
        except KeyError:
            raise ParameterError(
                f"no rule with id {rule_id!r} is registered; "
                f"registered rules: {', '.join(self.rule_ids()) or '(none)'}"
            ) from None

    def get(self, rule_id: str) -> LintRule:
        """The rule registered under ``rule_id`` (with a listing on miss)."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise ParameterError(
                f"unknown rule {rule_id!r}; registered rules: "
                f"{', '.join(self.rule_ids()) or '(none)'}"
            ) from None

    def rule_ids(self) -> tuple[str, ...]:
        """The registered rule identifiers, in registration order."""
        return tuple(self._rules)

    def select(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> tuple[LintRule, ...]:
        """The rules to run after applying ``--select``/``--ignore`` filters.

        ``select`` names the only rules to run (unknown names are errors, so
        typos never silently disable a gate); ``ignore`` removes rules from
        whatever ``select`` produced.
        """
        if select is not None:
            chosen = [self.get(rule_id) for rule_id in select]
        else:
            chosen = list(self._rules.values())
        if ignore is not None:
            dropped = {self.get(rule_id).rule_id for rule_id in ignore}
            chosen = [rule for rule in chosen if rule.rule_id not in dropped]
        return tuple(chosen)

    def __contains__(self, rule_id: object) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[LintRule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RuleRegistry({', '.join(self.rule_ids())})"


def _build_default_registry() -> RuleRegistry:
    from .checks import builtin_rules

    return RuleRegistry(builtin_rules())


#: The process-wide default registry, pre-populated with the built-in rules.
_DEFAULT_REGISTRY: RuleRegistry | None = None


def default_registry() -> RuleRegistry:
    """The process-wide rule registry used when no explicit one is passed."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = _build_default_registry()
    return _DEFAULT_REGISTRY


def register_rule(rule: LintRule, *, replace: bool = False) -> LintRule:
    """Register a rule with the default registry (third-party hook)."""
    return default_registry().register(rule, replace=replace)


def unregister_rule(rule_id: str) -> LintRule:
    """Remove a rule from the default registry (mostly for tests)."""
    return default_registry().unregister(rule_id)


def rule_ids() -> tuple[str, ...]:
    """The rule identifiers registered with the default registry."""
    return default_registry().rule_ids()
