"""Small AST utilities shared by the built-in lint rules.

Everything here is pure syntax inspection — no imports are executed, no
modules are loaded.  The helpers deliberately resolve names *textually*
(``time.sleep`` is the attribute chain ``time`` → ``sleep``), with a module
import table (:func:`import_table`) to see through ``from time import sleep``
style aliasing; rules stay deterministic and safe to run on untrusted code.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """The dotted source text of a ``Name``/``Attribute`` chain, else ``None``.

    ``time.sleep`` → ``"time.sleep"``; ``self.cache.lookup`` →
    ``"self.cache.lookup"``; anything rooted in a call or subscript (e.g.
    ``Path(x).read_text``) resolves the trailing attribute path only, rooted
    at ``"()"`` so callers can still match on the final segments.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif parts:
        parts.append("()")
    else:
        return None
    return ".".join(reversed(parts))


def last_segment(node: ast.AST) -> str | None:
    """The final attribute/name segment of a chain (``a.b.c`` → ``"c"``)."""
    name = dotted_name(node)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported from.

    ``import time`` → ``{"time": "time"}``; ``from time import sleep`` →
    ``{"sleep": "time.sleep"}``; ``import numpy as np`` →
    ``{"np": "numpy"}``.  Star imports contribute nothing (they cannot be
    resolved textually).
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".", 1)[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def resolve_call_target(call: ast.Call, imports: dict[str, str]) -> str | None:
    """The dotted origin of a call's target, seen through the import table.

    A call to ``sleep(...)`` after ``from time import sleep`` resolves to
    ``"time.sleep"``; ``sp.run(...)`` after ``import subprocess as sp``
    resolves to ``"subprocess.run"``; unresolvable targets fall back to the
    textual dotted name.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    origin = imports.get(root)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def walk_body(nodes: list[ast.stmt], *, skip_nested_defs: bool = True) -> Iterator[ast.AST]:
    """Walk statements, optionally not descending into nested def/class bodies.

    Rules about *this* function's execution context (e.g. "no blocking calls
    on the event loop") must not descend into nested function definitions —
    a nested helper's body runs when the helper is *called*, which may well
    be off-loop — while still seeing the nested ``def`` statement itself.
    """
    for statement in nodes:
        if skip_nested_defs and isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            yield statement
            continue
        yield statement
        for child in ast.iter_child_nodes(statement):
            yield from _walk_node(child, skip_nested_defs)


def _walk_node(node: ast.AST, skip_nested_defs: bool) -> Iterator[ast.AST]:
    if skip_nested_defs and isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        yield node
        return
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _walk_node(child, skip_nested_defs)


def class_methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """The methods defined directly in a class body."""
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield statement


def assigned_class_names(node: ast.ClassDef) -> dict[str, ast.expr]:
    """Class-body attribute assignments: name → assigned value expression."""
    assigned: dict[str, ast.expr] = {}
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    assigned[target.id] = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and statement.value is not None:
                assigned[statement.target.id] = statement.value
    return assigned
