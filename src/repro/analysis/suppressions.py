"""Inline suppression comments: ``# repro: noqa`` and ``# repro: noqa RPRxxx``.

A finding is suppressed when the physical line it anchors to carries a
``# repro: noqa`` comment — bare (suppressing every rule on that line) or
followed by one or more comma-separated rule identifiers (suppressing only
those).  The marker is deliberately namespaced (``repro:``) so it never
collides with ruff/flake8 ``# noqa`` comments, and rule-scoped suppressions
are preferred: a reviewer can see *which* contract the line opts out of.

Examples::

    if scv == 1.0:  # repro: noqa RPR003  (exact sentinel: scv==1 means exponential)
    except BaseException:  # repro: noqa RPR006, RPR001
    anything_at_all()  # repro: noqa
"""

from __future__ import annotations

import re

from .findings import Finding

#: ``# repro: noqa`` with an optional colon and a rule list.
_SUPPRESSION = re.compile(
    r"#\s*repro:\s*noqa(?::|\b)\s*(?P<rules>RPR\d+(?:\s*,\s*RPR\d+)*)?",
    re.IGNORECASE,
)


def suppressed_rules(line: str) -> frozenset[str] | None:
    """The rules a source line suppresses.

    Returns ``None`` when the line carries no suppression comment, the empty
    frozenset for a bare ``# repro: noqa`` (suppress everything on the line),
    and the named identifiers (upper-cased) for a rule-scoped comment.
    """
    match = _SUPPRESSION.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if not rules:
        return frozenset()
    return frozenset(part.strip().upper() for part in rules.split(","))


class SuppressionIndex:
    """Per-file index answering "is this finding suppressed?" in O(1)."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, frozenset[str]] = {}
        for number, line in enumerate(source.splitlines(), start=1):
            if "noqa" not in line:  # cheap pre-filter before the regex
                continue
            rules = suppressed_rules(line)
            if rules is not None:
                self._by_line[number] = rules

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether the line of ``finding`` opts out of its rule."""
        rules = self._by_line.get(finding.line)
        if rules is None:
            return False
        return not rules or finding.rule.upper() in rules

    def __len__(self) -> int:
        return len(self._by_line)
