"""The :class:`Finding` record every lint rule emits.

A finding is one diagnostic anchored to a source location: the rule that
produced it, the file, the 1-based line, the 0-based column and a
human-readable message.  Findings are plain frozen dataclasses so reports can
sort, deduplicate and serialise them without knowing anything about the rule
that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a lint rule.

    The field order doubles as the sort order: reports group by file, then by
    position, then by rule identifier — the order a human fixes findings in.
    """

    #: Display path of the offending file.
    path: str
    #: 1-based source line the finding anchors to.
    line: int
    #: 0-based column offset on that line.
    column: int
    #: Rule identifier, e.g. ``"RPR001"``.
    rule: str
    #: Human-readable description of the defect and the expected fix.
    message: str

    def to_dict(self) -> dict[str, object]:
        """The JSON-serialisable form used by ``repro lint --format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line text form: ``path:line:col: RPRxxx message``."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
