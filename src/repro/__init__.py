"""repro — reproduction of Palmer & Mitrani, "Empirical and Analytical
Evaluation of Systems with Multiple Unreliable Servers" (DSN 2006).

The library models clusters of parallel servers that alternate between
operative and inoperative periods, evaluates their performance exactly by
spectral expansion of the underlying Markov-modulated queue, approximates it
with the heavy-load geometric law, validates both against a truncated-CTMC
solver and a discrete-event simulator, and reproduces the paper's empirical
trace analysis and every numerical experiment (Figures 3–9).

Quickstart
----------

>>> from repro import UnreliableQueueModel
>>> from repro.distributions import SUN_OPERATIVE_FIT, Exponential
>>> model = UnreliableQueueModel(
...     num_servers=10,
...     arrival_rate=7.0,
...     service_rate=1.0,
...     operative=SUN_OPERATIVE_FIT,
...     inoperative=Exponential(rate=25.0),
... )
>>> solution = model.solve_spectral()
>>> round(solution.mean_response_time, 3)  # doctest: +SKIP
1.31

Subpackages
-----------

:mod:`repro.distributions`
    Exponential, hyperexponential and supporting distributions.
:mod:`repro.stats`
    Empirical densities, moments and the Kolmogorov–Smirnov test.
:mod:`repro.fitting`
    Moment-matching, brute-force, iterative and EM distribution fitting.
:mod:`repro.data`
    Breakdown-trace model, synthetic Sun-like trace generation, CSV I/O.
:mod:`repro.markov`
    Operational-mode enumeration, the Markovian environment, CTMC solvers.
:mod:`repro.spectral`
    The spectral-expansion solver and the geometric approximation.
:mod:`repro.queueing`
    The model front end, the truncated-CTMC reference solver and M/M/c
    baselines.
:mod:`repro.simulation`
    Discrete-event simulation with batch-means output analysis.
:mod:`repro.optimization`
    Cost optimisation and capacity planning.
:mod:`repro.solvers`
    Unified solver dispatch: the registry of named backends, the
    fallback-chain facade (:func:`repro.solvers.solve`) and the shared,
    process-safe solution cache.
:mod:`repro.scenarios`
    The scenario library: heterogeneous server groups, limited repair
    crews and named presets, solved by the scenario-aware backends.
:mod:`repro.sweeps`
    Declarative, parallel parameter sweeps built on :mod:`repro.solvers`.
:mod:`repro.transient`
    Time-dependent analysis: uniformization ``pi(t)`` distributions,
    availability and first-passage metrics, ensemble transient simulation.
:mod:`repro.service`
    The async solver service: JSON-over-HTTP queries scheduled onto the
    solver facade with single-flight coalescing, batch windows and
    admission-control backpressure (``repro serve``).
:mod:`repro.experiments`
    One driver per table/figure of the paper (built on :mod:`repro.sweeps`).
"""

from .distributions import (
    SUN_INOPERATIVE_FIT,
    SUN_OPERATIVE_FIT,
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    HyperExponential,
    PhaseType,
)
from .exceptions import (
    DataError,
    FittingError,
    ParameterError,
    ReproError,
    SimulationError,
    SolverError,
    UnstableQueueError,
    UnsupportedScenarioError,
)
from .queueing import (
    PerformanceSummary,
    QueueSolution,
    UnreliableQueueModel,
    sun_fitted_model,
)
from .scenarios import (
    ScenarioModel,
    ServerGroup,
    preset_names,
    scenario_preset,
)
from .solvers import SolutionCache, SolveOutcome, Solver, SolverPolicy, register_solver
from .solvers import solve as solve_model
from .spectral import (
    GeometricSolution,
    SpectralSolution,
    solve_geometric,
    solve_spectral,
)
from .transient import (
    FirstPassageSolution,
    TransientEnsembleEstimate,
    TransientSolution,
    first_passage_time,
    simulate_transient,
    solve_transient,
)

__version__ = "1.0.0"


def package_version() -> str:
    """The installed distribution's version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-unreliable-servers")
    except PackageNotFoundError:
        return __version__


__all__ = [
    "__version__",
    "package_version",
    # distributions
    "Distribution",
    "Exponential",
    "HyperExponential",
    "Erlang",
    "Deterministic",
    "PhaseType",
    "SUN_OPERATIVE_FIT",
    "SUN_INOPERATIVE_FIT",
    # model and solutions
    "UnreliableQueueModel",
    "sun_fitted_model",
    "QueueSolution",
    "PerformanceSummary",
    "SpectralSolution",
    "solve_spectral",
    "GeometricSolution",
    "solve_geometric",
    # scenario library
    "ScenarioModel",
    "ServerGroup",
    "scenario_preset",
    "preset_names",
    # transient analysis
    "TransientSolution",
    "FirstPassageSolution",
    "TransientEnsembleEstimate",
    "solve_transient",
    "first_passage_time",
    "simulate_transient",
    # solver registry and facade
    "Solver",
    "SolverPolicy",
    "SolveOutcome",
    "SolutionCache",
    "register_solver",
    "solve_model",
    # exceptions
    "ReproError",
    "ParameterError",
    "UnstableQueueError",
    "SolverError",
    "UnsupportedScenarioError",
    "FittingError",
    "DataError",
    "SimulationError",
]
