"""Markov-chain substrate: mode enumeration, environments and CTMC solvers.

Public API
----------

* :func:`num_modes`, :func:`enumerate_modes`, :func:`compositions`,
  :func:`mode_index_map`, :func:`operative_counts` — enumeration of the
  operational modes of the environment (paper Eq. 12 and the Section-3.1
  worked example).
* :class:`BreakdownEnvironment`, :class:`ModeTransition`,
  :func:`expected_num_modes` — the Markovian environment modulating the
  queue: matrices ``A`` and ``D^A``, operative-server counts, availability
  and the environment steady state.
* :class:`ScenarioEnvironment`, :func:`expected_num_scenario_modes` — the
  generalised environment of the scenario library: heterogeneous server
  groups (product mode space, per-group capacity vector) and a limited
  repair crew (completion rates scaled by ``min(broken, R) / broken``).
* :func:`steady_state_from_generator`, :func:`steady_state_sparse`,
  :func:`validate_generator`, :func:`embedded_jump_chain`,
  :func:`mean_holding_times` — generic CTMC utilities.
"""

from .ctmc import (
    embedded_jump_chain,
    mean_holding_times,
    steady_state_from_generator,
    steady_state_sparse,
    validate_generator,
)
from .environment import BreakdownEnvironment, ModeTransition, expected_num_modes
from .kernels import (
    LevelModeStructure,
    UniformizedOperator,
    assemble_level_mode_generator,
    steady_state_csr,
)
from .product_env import ProductScenarioEnvironment
from .scenario_env import (
    LumpedScenarioEnvironment,
    ScenarioEnvironment,
    expected_num_scenario_modes,
)
from .partitions import (
    compositions,
    enumerate_modes,
    mode_index_map,
    num_modes,
    operative_counts,
)

__all__ = [
    "compositions",
    "enumerate_modes",
    "mode_index_map",
    "num_modes",
    "operative_counts",
    "BreakdownEnvironment",
    "LevelModeStructure",
    "LumpedScenarioEnvironment",
    "ModeTransition",
    "ProductScenarioEnvironment",
    "ScenarioEnvironment",
    "UniformizedOperator",
    "assemble_level_mode_generator",
    "expected_num_modes",
    "expected_num_scenario_modes",
    "steady_state_csr",
    "steady_state_from_generator",
    "steady_state_sparse",
    "validate_generator",
    "embedded_jump_chain",
    "mean_holding_times",
]
