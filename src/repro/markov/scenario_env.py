"""Markovian environment for heterogeneous server groups with a shared repair crew.

The paper's environment (:mod:`repro.markov.environment`) tracks one
homogeneous pool of ``N`` servers.  This module generalises it along the two
axes of the scenario library:

* **heterogeneous server groups** — ``K`` groups, each with its own size and
  its own operative/inoperative period distributions.  A global operational
  mode is the tuple of per-group occupancy pairs ``(X_g, Y_g)``, so the mode
  space is the Cartesian product of the per-group partitions and the scalar
  operative count of the paper becomes a per-group *capacity vector*;
* **limited repair crew** — at most ``R`` servers can be under repair
  concurrently.  Following the classical machine-repairman construction, the
  repair crew is shared equally among the broken servers, so every
  inoperative completion rate is scaled by ``min(broken, R) / broken``.  At
  ``R = N`` (the default) the scaling factor is identically one and the
  product environment with ``K = 1`` reduces *exactly* to
  :class:`~repro.markov.environment.BreakdownEnvironment`.

Both the truncated-CTMC scenario solver and the scenario stability condition
are built on the quantities exposed here (generator, stationary distribution,
per-group operative counts).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse

from .._validation import check_positive_int
from ..distributions import Distribution
from ..exceptions import ParameterError
from .environment import ModeTransition, _as_phase_mixture
from .partitions import enumerate_modes, num_modes

#: Largest mode count for which the dense ``transition_matrix``/``generator``
#: accessors will materialise an ``s x s`` array.  Hot paths use the sparse
#: accessors; the dense ones remain for tests and small environments.
DENSE_MODE_LIMIT = 4096


@dataclass(frozen=True)
class _GroupPhases:
    """Phase parameters of one server group (internal)."""

    size: int
    alpha: np.ndarray  # operative-phase entry probabilities
    xi: np.ndarray  # operative-phase rates
    beta: np.ndarray  # inoperative-phase entry probabilities
    eta: np.ndarray  # inoperative-phase rates


class ScenarioEnvironment:
    """The Markov-modulating environment of ``K`` server groups and ``R`` repairers.

    Parameters
    ----------
    groups:
        A sequence of ``(size, operative, inoperative)`` triples, one per
        group.  Period distributions must be exponential or hyperexponential
        (the analytical restriction of the paper); general distributions are
        handled by the scenario simulator instead.
    repair_capacity:
        The number of servers that can be repaired concurrently, ``R``.
        ``None`` means an unlimited crew (``R = N``), which recovers the
        paper's model.

    Examples
    --------
    One group with the paper's worked-example parameters reproduces the
    six-mode homogeneous environment:

    >>> from repro.distributions import HyperExponential, Exponential
    >>> env = ScenarioEnvironment(
    ...     groups=[
    ...         (2, HyperExponential(weights=[0.5, 0.5], rates=[1.0, 0.1]), Exponential(rate=2.0)),
    ...     ],
    ... )
    >>> env.num_modes
    6
    """

    def __init__(
        self,
        groups: list[tuple[int, Distribution, Distribution]],
        *,
        repair_capacity: int | None = None,
    ) -> None:
        if not groups:
            raise ParameterError("a scenario environment needs at least one server group")
        phases: list[_GroupPhases] = []
        for position, (size, operative, inoperative) in enumerate(groups):
            size = check_positive_int(size, f"groups[{position}].size")
            alpha, xi = _as_phase_mixture(operative, f"groups[{position}].operative")
            beta, eta = _as_phase_mixture(inoperative, f"groups[{position}].inoperative")
            phases.append(_GroupPhases(size=size, alpha=alpha, xi=xi, beta=beta, eta=eta))
        self._groups = tuple(phases)
        self._num_servers = sum(group.size for group in self._groups)
        if repair_capacity is None:
            repair_capacity = self._num_servers
        repair_capacity = check_positive_int(repair_capacity, "repair_capacity")
        self._repair_capacity = min(repair_capacity, self._num_servers)

        # Per-group local mode lists and index maps; the global mode space is
        # their Cartesian product with group 0 varying slowest, so a single
        # group enumerates exactly like the homogeneous environment.
        self._local_modes = [
            enumerate_modes(group.size, group.alpha.size, group.beta.size)
            for group in self._groups
        ]
        self._local_index = [
            {mode: index for index, mode in enumerate(modes)} for modes in self._local_modes
        ]
        self._modes = list(itertools.product(*self._local_modes))
        self._mode_index = {mode: index for index, mode in enumerate(self._modes)}

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #

    @property
    def num_groups(self) -> int:
        """The number of server groups ``K``."""
        return len(self._groups)

    @property
    def num_servers(self) -> int:
        """The total number of servers ``N`` across all groups."""
        return self._num_servers

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """The per-group server counts."""
        return tuple(group.size for group in self._groups)

    @property
    def repair_capacity(self) -> int:
        """The repair-crew size ``R`` (at most ``N``)."""
        return self._repair_capacity

    @property
    def num_modes(self) -> int:
        """The number of global modes (product of the per-group mode counts)."""
        return len(self._modes)

    @property
    def num_product_modes(self) -> int:
        """The size ``prod_g (n_g + m_g)^{N_g}`` of the per-server-labelled chain.

        The state count this environment *would* have without exchangeable-
        server lumping — the denominator of the state-space saving reported by
        the CLI and the benchmarks.  Computed without building that chain (it
        is astronomically large for realistic group sizes).
        """
        total = 1
        for group in self._groups:
            total *= int(group.alpha.size + group.beta.size) ** group.size
        return total

    @property
    def modes(self) -> list[tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]]:
        """The global modes as tuples of per-group ``(X, Y)`` occupancy pairs."""
        return list(self._modes)

    def mode_of(self, mode: tuple) -> int:
        """Return the index of the mode with the given per-group occupancies."""
        key = tuple((tuple(operative), tuple(inoperative)) for operative, inoperative in mode)
        if key not in self._mode_index:
            raise ParameterError(f"no such mode: {key!r}")
        return self._mode_index[key]

    @cached_property
    def operative_counts_by_group(self) -> np.ndarray:
        """Array of shape ``(num_modes, K)``: operative servers per group and mode.

        Built by mixed-radix tiling of the per-group local counts (group 0
        varies slowest in the global enumeration), not by iterating the
        global product space.
        """
        sizes = [len(modes) for modes in self._local_modes]
        counts = np.zeros((self.num_modes, len(self._groups)))
        for position, local_modes in enumerate(self._local_modes):
            local = np.array([float(sum(operative)) for operative, _ in local_modes])
            before = math.prod(sizes[:position])
            after = math.prod(sizes[position + 1 :])
            counts[:, position] = np.tile(np.repeat(local, after), before)
        return counts

    @cached_property
    def operative_counts(self) -> np.ndarray:
        """The total number of operative servers in each mode, in mode order."""
        return self.operative_counts_by_group.sum(axis=1)

    @cached_property
    def broken_counts(self) -> np.ndarray:
        """The total number of inoperative servers in each mode, in mode order."""
        return float(self._num_servers) - self.operative_counts

    def repair_share(self, broken: float) -> float:
        """The crew-sharing factor ``min(broken, R) / broken`` (1 when nothing is broken)."""
        if broken <= 0:
            return 1.0
        return min(float(broken), float(self._repair_capacity)) / float(broken)

    @property
    def operative_weights_by_group(self) -> tuple[np.ndarray, ...]:
        """Per-group operative-phase entry probabilities ``alpha_gj`` (copies).

        Exposed for consumers that need the phase mixture itself rather than
        the transition structure — e.g. the transient engine's multinomial
        all-operative initial condition.
        """
        return tuple(group.alpha.copy() for group in self._groups)

    @property
    def inoperative_weights_by_group(self) -> tuple[np.ndarray, ...]:
        """Per-group inoperative-phase entry probabilities ``beta_gk`` (copies)."""
        return tuple(group.beta.copy() for group in self._groups)

    # ------------------------------------------------------------------ #
    # Transition structure
    # ------------------------------------------------------------------ #

    def transitions(self) -> list[ModeTransition]:
        """Enumerate all mode-changing transitions with their rates.

        Breakdowns in group ``g`` move one server from operative phase ``j``
        to inoperative phase ``k`` at rate ``x_gj xi_gj beta_gk`` (as in the
        homogeneous environment, per group).  Repairs are additionally scaled
        by the crew-sharing factor ``min(broken, R) / broken`` of the source
        mode, so at most ``R`` servers make repair progress concurrently.
        """
        result: list[ModeTransition] = []
        for index, mode in enumerate(self._modes):
            broken = float(self.broken_counts[index])
            share = self.repair_share(broken)
            for position, group in enumerate(self._groups):
                operative, inoperative = mode[position]
                for j in range(group.alpha.size):
                    if operative[j] == 0:
                        continue
                    for k in range(group.beta.size):
                        rate = operative[j] * group.xi[j] * group.beta[k]
                        if rate == 0.0:
                            continue
                        new_operative = list(operative)
                        new_operative[j] -= 1
                        new_inoperative = list(inoperative)
                        new_inoperative[k] += 1
                        target = self._target_index(
                            index, position, (tuple(new_operative), tuple(new_inoperative))
                        )
                        result.append(
                            ModeTransition(
                                source=index, target=target, rate=rate, kind="breakdown"
                            )
                        )
                for k in range(group.beta.size):
                    if inoperative[k] == 0:
                        continue
                    for j in range(group.alpha.size):
                        rate = inoperative[k] * group.eta[k] * group.alpha[j] * share
                        if rate == 0.0:
                            continue
                        new_operative = list(operative)
                        new_operative[j] += 1
                        new_inoperative = list(inoperative)
                        new_inoperative[k] -= 1
                        target = self._target_index(
                            index, position, (tuple(new_operative), tuple(new_inoperative))
                        )
                        result.append(
                            ModeTransition(source=index, target=target, rate=rate, kind="repair")
                        )
        return result

    def _target_index(self, source: int, position: int, local_mode: tuple) -> int:
        """Index of the mode equal to ``source`` with group ``position`` replaced."""
        mode = list(self._modes[source])
        mode[position] = local_mode
        return self._mode_index[tuple(mode)]

    def _local_transition_matrices(
        self, position: int
    ) -> tuple[scipy.sparse.csr_matrix, scipy.sparse.csr_matrix]:
        """One group's local breakdown and *unscaled* repair rate matrices.

        Local matrices live on the group's own mode space (a few dozen to a
        few hundred states), so the Python loop here is cheap; the global
        matrix is assembled from them by Kronecker lifting.  Repair rates are
        returned without the crew-sharing factor, which depends on the global
        broken count and is applied as a row scaling of the lifted matrix.
        """
        group = self._groups[position]
        modes = self._local_modes[position]
        index_map = self._local_index[position]
        rows: list[int] = []
        cols: list[int] = []
        breakdown_rates: list[float] = []
        repair_rows: list[int] = []
        repair_cols: list[int] = []
        repair_rates: list[float] = []
        for source, (operative, inoperative) in enumerate(modes):
            for j in range(group.alpha.size):
                if operative[j] == 0:
                    continue
                for k in range(group.beta.size):
                    rate = operative[j] * group.xi[j] * group.beta[k]
                    if rate == 0.0:
                        continue
                    new_operative = list(operative)
                    new_operative[j] -= 1
                    new_inoperative = list(inoperative)
                    new_inoperative[k] += 1
                    target = index_map[(tuple(new_operative), tuple(new_inoperative))]
                    rows.append(source)
                    cols.append(target)
                    breakdown_rates.append(float(rate))
            for k in range(group.beta.size):
                if inoperative[k] == 0:
                    continue
                for j in range(group.alpha.size):
                    rate = inoperative[k] * group.eta[k] * group.alpha[j]
                    if rate == 0.0:
                        continue
                    new_operative = list(operative)
                    new_operative[j] += 1
                    new_inoperative = list(inoperative)
                    new_inoperative[k] -= 1
                    target = index_map[(tuple(new_operative), tuple(new_inoperative))]
                    repair_rows.append(source)
                    repair_cols.append(target)
                    repair_rates.append(float(rate))
        size = len(modes)
        breakdown = scipy.sparse.coo_matrix(
            (breakdown_rates, (rows, cols)), shape=(size, size)
        ).tocsr()
        repair = scipy.sparse.coo_matrix(
            (repair_rates, (repair_rows, repair_cols)), shape=(size, size)
        ).tocsr()
        return breakdown, repair

    @cached_property
    def transition_matrix_sparse(self) -> scipy.sparse.csr_matrix:
        """Sparse matrix of mode-changing transition rates (zero diagonal).

        Assembled structurally: each group's local breakdown/repair matrix is
        lifted to the global product space with Kronecker products
        (``I x B_g x I``), then repairs are row-scaled by the crew-sharing
        factor ``min(broken, R) / broken`` of the source mode.  No loop over
        the global mode space is involved, so assembly stays fast for
        environments far beyond the dense limit.
        """
        sizes = [len(modes) for modes in self._local_modes]
        total = self.num_modes
        breakdown = scipy.sparse.csr_matrix((total, total))
        repair = scipy.sparse.csr_matrix((total, total))
        for position in range(len(self._groups)):
            local_breakdown, local_repair = self._local_transition_matrices(position)
            before = math.prod(sizes[:position])
            after = math.prod(sizes[position + 1 :])
            for local, accumulate in ((local_breakdown, True), (local_repair, False)):
                lifted = scipy.sparse.kron(
                    scipy.sparse.identity(before),
                    scipy.sparse.kron(local, scipy.sparse.identity(after)),
                ).tocsr()
                if accumulate:
                    breakdown = breakdown + lifted
                else:
                    repair = repair + lifted
        broken = self.broken_counts
        share = np.where(
            broken > 0.0,
            np.minimum(broken, float(self._repair_capacity)) / np.maximum(broken, 1.0),
            1.0,
        )
        matrix = breakdown + scipy.sparse.diags(share) @ repair
        return matrix.tocsr()

    @cached_property
    def generator_sparse(self) -> scipy.sparse.csr_matrix:
        """The environment's own CTMC generator, sparse (the hot-path accessor)."""
        matrix = self.transition_matrix_sparse
        diagonal = np.asarray(matrix.sum(axis=1)).ravel()
        return (matrix - scipy.sparse.diags(diagonal)).tocsr()

    def _check_dense_limit(self, what: str) -> None:
        if self.num_modes > DENSE_MODE_LIMIT:
            raise ParameterError(
                f"refusing to materialise the dense {what} for {self.num_modes} modes "
                f"(limit {DENSE_MODE_LIMIT}); use the sparse accessor "
                f"'{what}_sparse' instead"
            )

    @cached_property
    def transition_matrix(self) -> np.ndarray:
        """Dense matrix of mode-changing transition rates (small environments).

        Kept for tests and small environments; every hot path uses
        :attr:`transition_matrix_sparse`.  Environments beyond
        :data:`DENSE_MODE_LIMIT` modes refuse to densify.
        """
        self._check_dense_limit("transition_matrix")
        return np.asarray(self.transition_matrix_sparse.todense())

    @cached_property
    def generator(self) -> np.ndarray:
        """The environment's own CTMC generator, dense (small environments)."""
        self._check_dense_limit("generator")
        return np.asarray(self.generator_sparse.todense())

    # ------------------------------------------------------------------ #
    # Steady-state quantities
    # ------------------------------------------------------------------ #

    @cached_property
    def steady_state(self) -> np.ndarray:
        """The stationary distribution of the environment over its modes.

        With a limited repair crew the per-server availability is *not*
        product-form, so — unlike the homogeneous environment — every
        steady-state quantity must come from this distribution.  Solved on
        the sparse generator, so it scales to environments far beyond the
        dense limit.
        """
        from .kernels import steady_state_csr

        return steady_state_csr(self.generator_sparse)

    @cached_property
    def mean_operative_servers(self) -> float:
        """The steady-state average number of operative servers."""
        return float(self.steady_state @ self.operative_counts)

    @property
    def availability(self) -> float:
        """The long-run fraction of servers that are operative."""
        return self.mean_operative_servers / self._num_servers

    def service_capacities(self, service_rates: Sequence[float] | np.ndarray) -> np.ndarray:
        """Per-mode full-utilisation service capacity ``sum_g x_g(m) mu_g``."""
        rates = np.asarray(service_rates, dtype=float)
        if rates.shape != (self.num_groups,):
            raise ParameterError(
                f"expected {self.num_groups} per-group service rates, got shape {rates.shape}"
            )
        return self.operative_counts_by_group @ rates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScenarioEnvironment(groups={self.group_sizes}, "
            f"R={self._repair_capacity}, modes={self.num_modes})"
        )


#: Servers within a group are exchangeable — rates depend only on how many
#: servers occupy each phase, never on which — so the count-based mode space
#: of :class:`ScenarioEnvironment` is the *lumped* quotient of the per-server
#: product chain (strong lumpability).  The alias makes the representation
#: explicit at call sites that contrast it with
#: :class:`~repro.markov.product_env.ProductScenarioEnvironment`.
LumpedScenarioEnvironment = ScenarioEnvironment


def expected_num_scenario_modes(
    groups: list[tuple[int, Distribution, Distribution]],
) -> int:
    """The global mode count without building the environment."""
    total = 1
    for position, (size, operative, inoperative) in enumerate(groups):
        alpha, _ = _as_phase_mixture(operative, f"groups[{position}].operative")
        beta, _ = _as_phase_mixture(inoperative, f"groups[{position}].inoperative")
        total *= num_modes(size, alpha.size, beta.size)
    return total
