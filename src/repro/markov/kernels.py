"""Shared sparse CTMC kernels for the library's level x mode chains.

Every truncated chain in the library — the homogeneous reference chain of
:mod:`repro.queueing.ctmc_reference`, the scenario chain of
:mod:`repro.scenarios.ctmc` and the transient engine's chains — has the same
shape: states are ``(level, mode)`` pairs indexed level-major
(``index = level * num_modes + mode``), arrivals move one level up at a
constant rate, departures move one level down at a level- and mode-dependent
rate, and mode changes are **level-independent** (the environment does not
see the queue).  This module exploits that shape three times over:

* :func:`assemble_level_mode_generator` builds the sparse generator in one
  vectorised pass — a Kronecker product for the environment part plus two
  offset diagonals for the level part — replacing the per-level Python loops
  the builders used to run;
* :func:`steady_state_csr` solves ``pi Q = 0``.  Small or narrow-band chains
  use a sparse LU factorisation of the *reduced* balance system (one unknown
  pinned, so the matrix stays sparse — no dense normalisation row).  Large
  many-mode chains, whose 4-D lattice structure makes direct factorisation
  fill in catastrophically, use a structured aggregation–disaggregation
  iteration (see below) that converges in a few dozen sweeps;
* :class:`UniformizedOperator` wraps the uniformized DTMC matrix
  ``P = I + Q / Lambda`` together with its **pre-transposed** CSR form, so
  the transient engine's hot loop ``v <- v P`` is a single CSR matrix-vector
  product instead of an implicit CSC conversion per step.

The aggregation–disaggregation iteration
----------------------------------------
Because mode-changing rates are level-independent, summing the balance
equations ``pi Q = 0`` over levels cancels every level transition (they
preserve the mode) and leaves exactly the balance equations of the
*environment* chain: the mode marginals of the truncated chain equal the
environment's stationary distribution, whatever the truncation level.  The
iteration alternates cheap structured smoothing with an exact enforcement of
that invariant:

1. **level sweep** — solve the block-tridiagonal system that couples levels
   within each mode (a fill-free LU after a mode-major permutation);
2. **mode sweep** — solve the block-diagonal system that couples modes
   within each level;
3. **disaggregation** — rescale each mode's column so its marginal matches
   the exact environment stationary distribution.

Steps 1–2 remove error that varies quickly in either direction; step 3
removes the slow inter-mode error (the component a Krylov method with the
same preconditioners stalls on), so the combination contracts geometrically.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from ..exceptions import ParameterError, SolverError
from ..obs.metrics import RESIDUAL_BUCKETS, SWEEP_COUNT_BUCKETS, numerics_registry

#: Default absolute tolerance on ``max |pi Q|`` for the iterative solver.
DEFAULT_STEADY_STATE_TOL = 1e-12

#: Hard cap on aggregation-disaggregation sweeps (each sweep is two
#: structured solves plus a rescale; well-posed chains need a few dozen).
MAX_IAD_SWEEPS = 2000

#: Estimated fill budget for the direct path: a level-major band solve fills
#: roughly ``size * num_modes`` entries, so chains above this product use the
#: aggregation-disaggregation iteration instead (when the structure is known).
_DIRECT_FILL_BUDGET = 30_000_000

#: Largest magnitude of a negative entry tolerated in a computed vector.
_NEGATIVITY_TOLERANCE = 1e-8

#: Relative residual (``max |pi Q|`` over the largest exit rate) below which
#: a pinned direct solve is accepted; above it the next pivot is tried.
_RESIDUAL_TOLERANCE = 1e-8


def _as_csr(matrix: scipy.sparse.spmatrix | np.ndarray) -> scipy.sparse.csr_matrix:
    """Coerce a dense or sparse matrix to CSR with float data."""
    return scipy.sparse.csr_matrix(matrix, dtype=float)


@dataclass(frozen=True)
class LevelModeStructure:
    """Structural description of a truncated level x mode chain.

    Attributes
    ----------
    num_levels:
        Number of queue-length levels (``J + 1``).
    num_modes:
        Number of environment modes ``s``; states are indexed
        ``level * num_modes + mode``.
    mode_generator:
        The environment's own ``s x s`` generator.  Mode-changing rates must
        be level-independent (which every builder in the library guarantees);
        its stationary distribution is the exact mode marginal of the
        truncated chain and anchors the disaggregation step.
    """

    num_levels: int
    num_modes: int
    mode_generator: scipy.sparse.csr_matrix

    @property
    def size(self) -> int:
        """Total number of states of the truncated chain."""
        return self.num_levels * self.num_modes

    @cached_property
    def mode_marginals(self) -> np.ndarray:
        """The exact mode marginals: the environment's stationary distribution."""
        return steady_state_csr(self.mode_generator)


def assemble_level_mode_generator(
    mode_rates: scipy.sparse.spmatrix | np.ndarray,
    arrival_rate: float,
    departure_rates: np.ndarray,
) -> scipy.sparse.csr_matrix:
    """Assemble the truncated level x mode generator in one vectorised pass.

    Parameters
    ----------
    mode_rates:
        The ``s x s`` matrix of mode-changing transition rates (off-diagonal;
        any diagonal entries are ignored).  Applied identically at every
        level.
    arrival_rate:
        The rate of one-level-up transitions; arrivals at the top level are
        dropped (the usual finite-buffer truncation).
    departure_rates:
        Array of shape ``(num_levels, s)``: the one-level-down rate out of
        each ``(level, mode)`` state.  Row 0 is ignored (no departures from
        an empty system).

    Returns
    -------
    The CSR generator of the truncated chain, states ordered level-major.
    """
    departures = np.asarray(departure_rates, dtype=float)
    if departures.ndim != 2:
        raise ParameterError(
            f"departure_rates must be 2-D (levels x modes), got shape {departures.shape}"
        )
    num_levels, num_modes = departures.shape
    modes = _as_csr(mode_rates)
    if modes.shape != (num_modes, num_modes):
        raise ParameterError(
            f"mode_rates has shape {modes.shape}, expected ({num_modes}, {num_modes})"
        )
    if num_levels < 1:
        raise ParameterError("at least one level is required")
    size = num_levels * num_modes

    off_diagonal = modes - scipy.sparse.diags(modes.diagonal())
    parts: list[scipy.sparse.spmatrix] = [
        scipy.sparse.kron(scipy.sparse.identity(num_levels), off_diagonal, format="coo")
    ]
    if num_levels > 1:
        arrivals = np.full(size - num_modes, float(arrival_rate))
        parts.append(scipy.sparse.diags(arrivals, offsets=num_modes, shape=(size, size)))
        down = departures[1:].ravel()
        parts.append(scipy.sparse.diags(down, offsets=-num_modes, shape=(size, size)))
    total: scipy.sparse.spmatrix = parts[0]
    for part in parts[1:]:
        total = total + part
    total = total.tocsr()
    diagonal = np.asarray(total.sum(axis=1)).ravel()
    generator = total - scipy.sparse.diags(diagonal)
    return generator.tocsr()


def _pivot_candidates(matrix: scipy.sparse.csr_matrix) -> list[int]:
    """States worth pinning, most promising first.

    Pinning ``pi_k = 1`` is only well-conditioned when the true ``pi_k`` is
    not vanishingly small.  In stiff chains (long operative periods, fast
    repairs) the mass concentrates on the states held the longest, so the
    smallest exit rate is the best single guess; index 0 and the middle
    state cover the remaining shapes.  Every candidate is validated against
    the balance residual before being accepted.
    """
    exit_rates = np.abs(matrix.diagonal())
    candidates = [int(np.argmin(exit_rates)), 0, matrix.shape[0] // 2]
    ordered: list[int] = []
    for candidate in candidates:
        if candidate not in ordered:
            ordered.append(candidate)
    return ordered


def _pinned_solve(
    transposed: scipy.sparse.csc_matrix, pivot: int, size: int
) -> np.ndarray:
    """Solve the balance system with ``pi[pivot]`` pinned to one."""
    keep = np.delete(np.arange(size), pivot)
    factor = scipy.sparse.linalg.splu(transposed[keep][:, keep].tocsc())
    column = np.asarray(transposed[:, [pivot]].todense()).ravel()
    tail = factor.solve(-column[keep])
    solution = np.empty(size)
    solution[pivot] = 1.0
    solution[keep] = tail
    return solution


def _validate_stationary(
    transposed: scipy.sparse.spmatrix, solution: np.ndarray, scale: float
) -> np.ndarray | None:
    """Normalise a pinned solve; accept it only if it balances ``pi Q = 0``."""
    if np.any(~np.isfinite(solution)):
        return None
    total = solution.sum()
    if total <= 0.0:
        return None
    candidate = solution / total
    if np.any(candidate < -_NEGATIVITY_TOLERANCE):
        return None
    candidate = np.clip(candidate, 0.0, None)
    candidate = candidate / candidate.sum()
    if float(np.max(np.abs(transposed @ candidate))) > scale * _RESIDUAL_TOLERANCE:
        return None
    return candidate


def _steady_state_direct(matrix: scipy.sparse.csr_matrix) -> np.ndarray:
    """Direct sparse solve of ``pi Q = 0`` with one unknown pinned.

    Pinning ``pi_k = 1`` and solving the reduced system keeps the matrix
    sparse (no dense normalisation row); the vector is then rescaled to sum
    to one.  Candidate pivots are tried in turn and each result is checked
    against the balance residual, so a pivot whose true probability is
    (near) zero — which makes the reduced system numerically singular — is
    rejected instead of returned.  Falls back to the dense solver for small
    systems when no pivot works.
    """
    size = matrix.shape[0]
    transposed = matrix.T.tocsc()
    scale = max(1.0, float(np.max(np.abs(matrix.diagonal()))))
    registry = numerics_registry()
    failure: Exception | None = None
    for pivot in _pivot_candidates(matrix):
        try:
            solution = _pinned_solve(transposed, pivot, size)
        except (RuntimeError, ValueError) as exc:
            failure = exc
            registry.counter(
                "repro_direct_pivot_rejections_total",
                "Pinned pivots rejected by the direct steady-state solver.",
            ).inc()
            continue
        candidate = _validate_stationary(transposed, solution, scale)
        if candidate is None:
            registry.counter(
                "repro_direct_pivot_rejections_total",
                "Pinned pivots rejected by the direct steady-state solver.",
            ).inc()
            continue
        registry.histogram(
            "repro_direct_residual",
            "Balance residual max|pi Q| of accepted direct solves.",
            buckets=RESIDUAL_BUCKETS,
        ).observe(float(np.max(np.abs(transposed @ candidate))))
        return candidate
    if size <= 5000:
        from .ctmc import steady_state_from_generator

        registry.counter(
            "repro_direct_dense_fallbacks_total",
            "Direct solves that fell back to the dense eigen-solver.",
        ).inc()
        return steady_state_from_generator(matrix.toarray())
    if failure is not None:
        raise SolverError(f"sparse steady-state solve failed: {failure}") from failure
    raise SolverError(
        "sparse steady-state solve failed: no pivot produced a valid distribution"
    )


def _steady_state_iad(
    matrix: scipy.sparse.csr_matrix,
    structure: LevelModeStructure,
    x0: np.ndarray | None,
    tol: float,
    max_sweeps: int,
) -> np.ndarray:
    """Aggregation-disaggregation iteration for large level x mode chains."""
    size = matrix.shape[0]
    num_levels, num_modes = structure.num_levels, structure.num_modes
    transposed = matrix.T.tocsr()
    coo = transposed.tocoo()

    # Level-direction system: diagonal plus the +-num_modes offset diagonals
    # (arrivals/departures).  After a mode-major permutation it is
    # block-diagonal with one tridiagonal block per mode, so the LU is
    # fill-free.
    difference = coo.row - coo.col
    level_part = (np.abs(difference) <= num_modes) & (difference % num_modes == 0)
    level_matrix = scipy.sparse.coo_matrix(
        (coo.data[level_part], (coo.row[level_part], coo.col[level_part])), shape=(size, size)
    )
    indices = np.arange(size)
    permutation = (indices % num_modes) * num_levels + indices // num_modes
    permute = scipy.sparse.csr_matrix(
        (np.ones(size), (permutation, indices)), shape=(size, size)
    )
    level_factor = scipy.sparse.linalg.splu((permute @ level_matrix @ permute.T).tocsc())

    # Mode-direction system: all transitions within one level (plus the
    # diagonal); block-diagonal in the natural level-major order.
    mode_part = (coo.row // num_modes) == (coo.col // num_modes)
    mode_matrix = scipy.sparse.coo_matrix(
        (coo.data[mode_part], (coo.row[mode_part], coo.col[mode_part])), shape=(size, size)
    ).tocsc()
    mode_factor = scipy.sparse.linalg.splu(mode_matrix)

    registry = numerics_registry()
    marginals = structure.mode_marginals
    if x0 is not None and x0.shape == (size,) and float(np.sum(np.clip(x0, 0.0, None))) > 0.0:
        vector = np.clip(np.asarray(x0, dtype=float), 0.0, None)
        registry.counter(
            "repro_iad_warm_starts_total",
            "IAD solves seeded from a caller-supplied warm start.",
        ).inc()
    else:
        vector = np.tile(marginals / num_levels, num_levels)

    positive = marginals > 0.0
    for sweep in range(1, max_sweeps + 1):
        residual = transposed @ vector
        vector = vector - (permute.T @ level_factor.solve(permute @ residual))
        residual = transposed @ vector
        vector = vector - mode_factor.solve(residual)
        vector = np.clip(vector, 0.0, None)
        current = vector.reshape(num_levels, num_modes).sum(axis=0)
        scale = np.where(positive, marginals / np.maximum(current, 1e-300), 0.0)
        vector = (vector.reshape(num_levels, num_modes) * scale).ravel()
        total = vector.sum()
        if total <= 0.0:  # pragma: no cover - defensive
            raise SolverError("aggregation-disaggregation iterate lost all mass")
        vector = vector / total
        residual_norm = float(np.max(np.abs(transposed @ vector)))
        if residual_norm < tol:
            registry.histogram(
                "repro_iad_sweeps",
                "Sweeps the aggregation-disaggregation iteration needed to converge.",
                buckets=SWEEP_COUNT_BUCKETS,
            ).observe(sweep)
            registry.histogram(
                "repro_iad_residual",
                "Final balance residual max|pi Q| of converged IAD solves.",
                buckets=RESIDUAL_BUCKETS,
            ).observe(residual_norm)
            return vector
    registry.counter(
        "repro_iad_nonconverged_total",
        "IAD solves that hit the sweep cap without converging.",
    ).inc()
    raise SolverError(
        f"aggregation-disaggregation did not reach tol={tol} in {max_sweeps} sweeps; "
        "the chain may violate the level-independent mode-rate structure"
    )


def steady_state_csr(
    generator: scipy.sparse.spmatrix | np.ndarray,
    *,
    structure: LevelModeStructure | None = None,
    x0: np.ndarray | None = None,
    tol: float = DEFAULT_STEADY_STATE_TOL,
    max_sweeps: int = MAX_IAD_SWEEPS,
) -> np.ndarray:
    """Stationary distribution ``pi`` of a sparse CTMC generator.

    Parameters
    ----------
    generator:
        The CTMC generator (dense or sparse; converted to CSR).
    structure:
        The level x mode structure of the chain, when it has one.  Chains
        whose estimated direct-factorisation fill exceeds the budget are
        solved by the structured aggregation-disaggregation iteration, which
        needs this; without it every chain takes the direct path.
    x0:
        Optional warm start for the iterative path (e.g. a neighbouring
        sweep point's solution).  Ignored by the direct path.
    tol:
        Absolute tolerance on ``max |pi Q|`` for the iterative path.
    max_sweeps:
        Iteration cap for the iterative path.
    """
    matrix = _as_csr(generator)
    if matrix.shape[0] != matrix.shape[1]:
        raise SolverError(f"generator must be square, got shape {matrix.shape}")
    size = matrix.shape[0]
    if size == 1:
        return np.array([1.0])
    if (
        structure is not None
        and structure.size == size
        and structure.num_levels > 1
        and size * structure.num_modes > _DIRECT_FILL_BUDGET
    ):
        numerics_registry().counter(
            "repro_steady_state_solves_total",
            "Sparse steady-state solves, by solver path.",
            labels={"path": "iad"},
        ).inc()
        return _steady_state_iad(matrix, structure, x0, tol, max_sweeps)
    numerics_registry().counter(
        "repro_steady_state_solves_total",
        "Sparse steady-state solves, by solver path.",
        labels={"path": "direct"},
    ).inc()
    return _steady_state_direct(matrix)


class UniformizedOperator:
    """The uniformized DTMC matrix ``P = I + Q / Lambda`` as a step operator.

    SciPy computes a row-vector product ``v @ P`` against a CSR matrix by
    converting to CSC on every call; for the uniformization sweep that
    conversion dominates the whole solve.  This operator stores ``P``
    together with its transpose in CSR form, computed **once**, so each step
    is a plain CSR matrix-vector product.
    """

    def __init__(self, matrix: scipy.sparse.csr_matrix, rate: float) -> None:
        self.matrix = matrix
        self.rate = float(rate)
        self._transpose = matrix.T.tocsr()

    @classmethod
    def from_generator(
        cls,
        generator: scipy.sparse.spmatrix | np.ndarray,
        rate: float | None = None,
    ) -> "UniformizedOperator":
        """Uniformize a generator: ``P = I + Q / Lambda`` at a valid rate.

        ``None`` selects the tightest valid rate ``max_i |Q_ii|``; an
        explicit rate below the largest exit rate would produce negative
        entries and is rejected.
        """
        matrix = _as_csr(generator)
        if matrix.shape[0] != matrix.shape[1]:
            raise SolverError(f"generator must be square, got shape {matrix.shape}")
        diagonal = matrix.diagonal()
        tightest = float(np.max(-diagonal)) if diagonal.size else 0.0
        if rate is None:
            rate = tightest
        elif rate < tightest * (1.0 - 1e-12):
            raise ParameterError(
                f"uniformization rate {rate} is below the largest exit rate {tightest}"
            )
        if rate <= 0.0:
            # Every state is absorbing: P is the identity.
            identity = scipy.sparse.identity(matrix.shape[0], format="csr")
            return cls(identity, 0.0)
        stochastic = (scipy.sparse.identity(matrix.shape[0], format="csr") + matrix / rate).tocsr()
        return cls(stochastic, float(rate))

    @property
    def size(self) -> int:
        """The number of states."""
        return int(self.matrix.shape[0])

    def step(self, vector: np.ndarray) -> np.ndarray:
        """One DTMC step ``v <- v P``, computed as ``P^T v`` on the cached CSR transpose."""
        return self._transpose @ vector
