"""Generic continuous-time Markov chain (CTMC) utilities.

Two consumers in the library need a plain CTMC steady-state solver:

* the :class:`~repro.markov.environment.BreakdownEnvironment`, whose own
  generator is a small dense matrix; and
* the truncated-CTMC reference solver in :mod:`repro.queueing.ctmc_reference`,
  which builds a (sparse) generator over ``(mode, queue length)`` pairs and is
  used to validate the spectral-expansion solution on finite state spaces.

The functions here therefore accept both dense NumPy arrays and SciPy sparse
matrices and always return a dense probability vector.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse

from ..exceptions import SolverError

#: Largest acceptable magnitude of a negative entry in a computed probability
#: vector before the solver refuses to return it.
_NEGATIVITY_TOLERANCE = 1e-8


def validate_generator(generator: np.ndarray, *, tolerance: float = 1e-9) -> None:
    """Validate that a dense matrix is a CTMC generator.

    A generator has non-negative off-diagonal entries, non-positive diagonal
    entries and zero row sums.  Raises :class:`SolverError` otherwise.
    """
    matrix = np.asarray(generator, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SolverError(f"generator must be square, got shape {matrix.shape}")
    off_diagonal = matrix - np.diag(np.diag(matrix))
    if np.any(off_diagonal < -tolerance):
        raise SolverError("generator has negative off-diagonal entries")
    if np.any(np.diag(matrix) > tolerance):
        raise SolverError("generator has positive diagonal entries")
    row_sums = matrix.sum(axis=1)
    if np.any(np.abs(row_sums) > 1e-6 * max(1.0, float(np.max(np.abs(matrix))))):
        raise SolverError("generator row sums are not zero")


def steady_state_from_generator(generator: np.ndarray) -> np.ndarray:
    """Stationary distribution ``pi`` of a dense CTMC generator (``pi Q = 0``).

    The singular balance system is closed by replacing one equation with the
    normalisation ``sum(pi) = 1`` and solved by least squares for robustness
    against mild ill-conditioning.

    Raises
    ------
    SolverError
        If the matrix is not square or the computed vector has significantly
        negative entries (indicating a reducible or malformed generator).
    """
    matrix = np.asarray(generator, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SolverError(f"generator must be square, got shape {matrix.shape}")
    size = matrix.shape[0]
    if size == 1:
        return np.array([1.0])
    # Solve pi Q = 0 with sum(pi) = 1: transpose to Q^T pi^T = 0 and append the
    # normalisation row.
    system = np.vstack([matrix.T, np.ones((1, size))])
    rhs = np.zeros(size + 1)
    rhs[-1] = 1.0
    solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    if np.any(solution < -_NEGATIVITY_TOLERANCE):
        raise SolverError(
            "stationary distribution has negative entries; "
            "the generator may be reducible or malformed"
        )
    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if total <= 0.0:
        raise SolverError("stationary distribution sums to zero")
    return solution / total


def steady_state_sparse(generator: scipy.sparse.spmatrix) -> np.ndarray:
    """Stationary distribution of a sparse CTMC generator.

    Thin wrapper over :func:`repro.markov.kernels.steady_state_csr` kept for
    backwards compatibility: callers that know their chain's level x mode
    structure should call the kernel directly (it can pick the structured
    iterative solver for large chains; this entry point always takes the
    direct sparse-LU path).
    """
    from .kernels import steady_state_csr

    return steady_state_csr(generator)


def embedded_jump_chain(generator: np.ndarray) -> np.ndarray:
    """Transition matrix of the embedded jump chain of a dense generator.

    Row ``i`` of the result is the conditional distribution of the next state
    given a jump out of state ``i``; absorbing states (zero exit rate) map to
    themselves.  Used by simulation utilities and tests.
    """
    matrix = np.asarray(generator, dtype=float)
    validate_generator(matrix)
    size = matrix.shape[0]
    jump = np.zeros_like(matrix)
    for i in range(size):
        exit_rate = -matrix[i, i]
        if exit_rate <= 0.0:
            jump[i, i] = 1.0
        else:
            jump[i] = matrix[i] / exit_rate
            jump[i, i] = 0.0
    return jump


def mean_holding_times(generator: np.ndarray) -> np.ndarray:
    """Mean holding time ``1 / -Q_{ii}`` per state (infinite for absorbing states)."""
    matrix = np.asarray(generator, dtype=float)
    validate_generator(matrix)
    diagonal = -np.diag(matrix)
    with np.errstate(divide="ignore"):
        return np.where(diagonal > 0.0, 1.0 / diagonal, np.inf)
