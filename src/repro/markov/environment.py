"""The Markovian environment of the unreliable multi-server queue.

Section 3 of the paper models the ``N`` servers as a Markovian environment
whose state records how many servers are in each phase of an operative or
inoperative period.  The environment is independent of the job queue; it
modulates the queue only through the number of operative servers in the
current mode (which determines the service capacity).

This module builds the environment from the operative and inoperative period
distributions (hyperexponential, including the exponential special case):

* the list of operational modes (see :mod:`repro.markov.partitions`);
* the matrix ``A`` of transition rates between modes (paper Section 3.1,
  item (a)) and the diagonal matrix ``D^A`` of its row sums;
* the number of operative servers in each mode, which generates the
  service-completion matrices ``C_j``;
* the environment's own steady-state distribution, availability and the mean
  number of operative servers — the ingredients of the stability condition
  (paper Eq. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse

from .._validation import check_positive_int
from ..distributions import Distribution, Exponential, HyperExponential
from ..exceptions import ParameterError
from .ctmc import steady_state_from_generator
from .partitions import enumerate_modes, mode_index_map, num_modes


def _as_phase_mixture(distribution: Distribution, name: str) -> tuple[np.ndarray, np.ndarray]:
    """Return (weights, rates) of a distribution usable as a period distribution.

    The analytical model requires hyperexponential (or exponential) periods;
    other distributions are rejected with a clear message — they can still be
    studied via the simulator.
    """
    if isinstance(distribution, HyperExponential):
        return distribution.weights, distribution.rates
    if isinstance(distribution, Exponential):
        return np.array([1.0]), np.array([distribution.rate])
    raise ParameterError(
        f"{name} must be Exponential or HyperExponential for the analytical model, "
        f"got {type(distribution).__name__}; use repro.simulation for general distributions"
    )


@dataclass(frozen=True)
class ModeTransition:
    """A single transition between operational modes.

    Attributes
    ----------
    source, target:
        Mode indices.
    rate:
        Transition rate.
    kind:
        Either ``"breakdown"`` (an operative server fails) or ``"repair"``
        (an inoperative server comes back).
    """

    source: int
    target: int
    rate: float
    kind: str


class BreakdownEnvironment:
    """The Markov-modulating environment of servers subject to breakdowns.

    Parameters
    ----------
    num_servers:
        The number of servers ``N``.
    operative:
        Distribution of operative periods (exponential or hyperexponential
        with weights ``alpha_j`` and rates ``xi_j``).
    inoperative:
        Distribution of inoperative periods (exponential or hyperexponential
        with weights ``beta_k`` and rates ``eta_k``).

    Examples
    --------
    The paper's worked example with two servers, two operative phases and one
    (exponential) inoperative phase has six modes:

    >>> from repro.distributions import HyperExponential, Exponential
    >>> env = BreakdownEnvironment(
    ...     num_servers=2,
    ...     operative=HyperExponential(weights=[0.5, 0.5], rates=[1.0, 0.1]),
    ...     inoperative=Exponential(rate=2.0),
    ... )
    >>> env.num_modes
    6
    """

    def __init__(
        self,
        num_servers: int,
        operative: Distribution,
        inoperative: Distribution,
    ) -> None:
        self._num_servers = check_positive_int(num_servers, "num_servers")
        self._operative = operative
        self._inoperative = inoperative
        weights_op, rates_op = _as_phase_mixture(operative, "operative")
        weights_rep, rates_rep = _as_phase_mixture(inoperative, "inoperative")
        self._alpha = weights_op
        self._xi = rates_op
        self._beta = weights_rep
        self._eta = rates_rep
        self._modes = enumerate_modes(self._num_servers, self._alpha.size, self._beta.size)
        self._mode_index = mode_index_map(self._num_servers, self._alpha.size, self._beta.size)

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #

    @property
    def num_servers(self) -> int:
        """The total number of servers ``N``."""
        return self._num_servers

    @property
    def operative_distribution(self) -> Distribution:
        """The operative-period distribution."""
        return self._operative

    @property
    def inoperative_distribution(self) -> Distribution:
        """The inoperative-period distribution."""
        return self._inoperative

    @property
    def num_operative_phases(self) -> int:
        """The number of operative phases ``n``."""
        return int(self._alpha.size)

    @property
    def num_inoperative_phases(self) -> int:
        """The number of inoperative phases ``m``."""
        return int(self._beta.size)

    @property
    def num_modes(self) -> int:
        """The number of operational modes ``s`` (paper Eq. 12)."""
        return len(self._modes)

    @property
    def modes(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """The list of modes as ``(X, Y)`` occupancy pairs, in mode order."""
        return list(self._modes)

    def mode_of(self, operative: tuple[int, ...], inoperative: tuple[int, ...]) -> int:
        """Return the index of the mode with the given occupancies."""
        key = (tuple(operative), tuple(inoperative))
        if key not in self._mode_index:
            raise ParameterError(f"no such mode: {key!r}")
        return self._mode_index[key]

    @cached_property
    def operative_counts(self) -> np.ndarray:
        """The number of operative servers ``x`` in each mode, in mode order."""
        return np.array([sum(operative) for operative, _ in self._modes], dtype=float)

    # ------------------------------------------------------------------ #
    # Transition structure (paper Section 3.1)
    # ------------------------------------------------------------------ #

    def transitions(self) -> list[ModeTransition]:
        """Enumerate all mode-changing transitions with their rates (paper Eq. 9).

        A breakdown moves one server from operative phase ``j`` to inoperative
        phase ``k`` at rate ``x_j xi_j beta_k``; a repair moves one server
        from inoperative phase ``k`` to operative phase ``j`` at rate
        ``y_k eta_k alpha_j``.
        """
        result: list[ModeTransition] = []
        n = self.num_operative_phases
        m = self.num_inoperative_phases
        for index, (operative, inoperative) in enumerate(self._modes):
            for j in range(n):
                if operative[j] == 0:
                    continue
                for k in range(m):
                    rate = operative[j] * self._xi[j] * self._beta[k]
                    if rate == 0.0:
                        continue
                    new_operative = list(operative)
                    new_operative[j] -= 1
                    new_inoperative = list(inoperative)
                    new_inoperative[k] += 1
                    target = self._mode_index[(tuple(new_operative), tuple(new_inoperative))]
                    result.append(
                        ModeTransition(source=index, target=target, rate=rate, kind="breakdown")
                    )
            for k in range(m):
                if inoperative[k] == 0:
                    continue
                for j in range(n):
                    rate = inoperative[k] * self._eta[k] * self._alpha[j]
                    if rate == 0.0:
                        continue
                    new_operative = list(operative)
                    new_operative[j] += 1
                    new_inoperative = list(inoperative)
                    new_inoperative[k] -= 1
                    target = self._mode_index[(tuple(new_operative), tuple(new_inoperative))]
                    result.append(
                        ModeTransition(source=index, target=target, rate=rate, kind="repair")
                    )
        return result

    @cached_property
    def transition_matrix_sparse(self) -> scipy.sparse.csr_matrix:
        """Sparse matrix ``A`` of mode-changing transition rates (zero diagonal).

        The truncated-chain builders consume this directly — level x mode
        chains are assembled sparsely end to end through
        :mod:`repro.markov.kernels` — so the dense :attr:`transition_matrix`
        is only materialised for the spectral algebra and for small chains.
        """
        transitions = self.transitions()
        rows = np.array([t.source for t in transitions], dtype=np.int64)
        cols = np.array([t.target for t in transitions], dtype=np.int64)
        rates = np.array([t.rate for t in transitions], dtype=float)
        size = self.num_modes
        return scipy.sparse.coo_matrix((rates, (rows, cols)), shape=(size, size)).tocsr()

    @cached_property
    def generator_sparse(self) -> scipy.sparse.csr_matrix:
        """The environment's CTMC generator ``A - D^A`` in sparse form."""
        matrix = self.transition_matrix_sparse
        diagonal = np.asarray(matrix.sum(axis=1)).ravel()
        return (matrix - scipy.sparse.diags(diagonal)).tocsr()

    @cached_property
    def transition_matrix(self) -> np.ndarray:
        """The matrix ``A`` of mode-changing transition rates (zero diagonal)."""
        return np.asarray(self.transition_matrix_sparse.todense())

    @cached_property
    def row_sum_matrix(self) -> np.ndarray:
        """The diagonal matrix ``D^A`` whose entries are the row sums of ``A``."""
        return np.diag(self.transition_matrix.sum(axis=1))

    @cached_property
    def generator(self) -> np.ndarray:
        """The environment's own CTMC generator ``A - D^A``."""
        return self.transition_matrix - self.row_sum_matrix

    # ------------------------------------------------------------------ #
    # Steady-state quantities (ingredients of paper Eq. 10-11)
    # ------------------------------------------------------------------ #

    @cached_property
    def steady_state(self) -> np.ndarray:
        """The stationary distribution of the environment over its modes."""
        return steady_state_from_generator(self.generator)

    @property
    def mean_operative_period(self) -> float:
        """The mean operative period ``1/xi = sum_j alpha_j / xi_j`` (Eq. 10)."""
        return float(np.sum(self._alpha / self._xi))

    @property
    def mean_inoperative_period(self) -> float:
        """The mean inoperative period ``1/eta = sum_k beta_k / eta_k`` (Eq. 10)."""
        return float(np.sum(self._beta / self._eta))

    @property
    def availability(self) -> float:
        """The long-run fraction of time a server is operative, ``eta / (xi + eta)``."""
        operative = self.mean_operative_period
        inoperative = self.mean_inoperative_period
        return operative / (operative + inoperative)

    @property
    def mean_operative_servers(self) -> float:
        """The steady-state average number of operative servers ``N eta / (xi + eta)``."""
        return self._num_servers * self.availability

    @cached_property
    def mean_operative_servers_from_steady_state(self) -> float:
        """The same quantity computed from the environment's stationary distribution.

        Provided as an internal consistency check: it must agree with
        :attr:`mean_operative_servers` because each server is operative a
        fraction ``eta / (xi + eta)`` of the time regardless of phase detail.
        """
        return float(self.steady_state @ self.operative_counts)

    # ------------------------------------------------------------------ #
    # Phase parameters (exposed for the spectral solver and tests)
    # ------------------------------------------------------------------ #

    @property
    def operative_weights(self) -> np.ndarray:
        """The operative-phase entry probabilities ``alpha_j`` (copy)."""
        return self._alpha.copy()

    @property
    def operative_rates(self) -> np.ndarray:
        """The operative-phase rates ``xi_j`` (copy)."""
        return self._xi.copy()

    @property
    def inoperative_weights(self) -> np.ndarray:
        """The inoperative-phase entry probabilities ``beta_k`` (copy)."""
        return self._beta.copy()

    @property
    def inoperative_rates(self) -> np.ndarray:
        """The inoperative-phase rates ``eta_k`` (copy)."""
        return self._eta.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BreakdownEnvironment(num_servers={self._num_servers}, "
            f"modes={self.num_modes}, availability={self.availability:.4f})"
        )


def expected_num_modes(num_servers: int, operative: Distribution, inoperative: Distribution) -> int:
    """The mode count ``s`` for given period distributions without building the environment."""
    alpha, _ = _as_phase_mixture(operative, "operative")
    beta, _ = _as_phase_mixture(inoperative, "inoperative")
    return num_modes(num_servers, alpha.size, beta.size)
