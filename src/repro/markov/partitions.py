"""Enumeration of server configurations over operative/inoperative phases.

The Markovian environment of the model tracks, for each of the ``n``
operative phases and ``m`` inoperative phases, how many of the ``N`` servers
currently sit in that phase.  A configuration is therefore a *weak
composition* of ``N`` into ``n + m`` non-negative parts, and the number of
configurations — the number of "operational modes" in the paper's terminology
— is the binomial coefficient of paper Eq. 12:

.. math::

    s = \\binom{N + n + m - 1}{n + m - 1} .

This module enumerates the compositions in a deterministic order, maps
between compositions and mode indices, and provides the count.  The ordering
is chosen so that the worked example of the paper (``N = 2, n = 2, m = 1``)
enumerates its six modes exactly as listed in Section 3.1: modes are sorted
by increasing number of operative servers, and within the same operative
count lexicographically by the operative phase occupancies (phase-1-heavy
configurations first), then by the inoperative occupancies.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from math import comb

from .._validation import check_non_negative_int, check_positive_int


def num_modes(num_servers: int, num_operative_phases: int, num_inoperative_phases: int) -> int:
    """The number of operational modes ``s`` (paper Eq. 12)."""
    total_servers = check_non_negative_int(num_servers, "num_servers")
    n = check_positive_int(num_operative_phases, "num_operative_phases")
    m = check_positive_int(num_inoperative_phases, "num_inoperative_phases")
    return comb(total_servers + n + m - 1, n + m - 1)


def compositions(total: int, parts: int) -> list[tuple[int, ...]]:
    """All weak compositions of ``total`` into ``parts`` non-negative integers.

    The compositions are returned in lexicographically *decreasing* order of
    the leading parts (i.e. ``(total, 0, ..)`` first), which places
    phase-1-heavy configurations before phase-2-heavy ones as in the paper's
    worked example.
    """
    total = check_non_negative_int(total, "total")
    parts = check_positive_int(parts, "parts")
    results: list[tuple[int, ...]] = []
    if parts == 1:
        return [(total,)]
    for first in range(total, -1, -1):
        for rest in compositions(total - first, parts - 1):
            results.append((first,) + rest)
    return results


@lru_cache(maxsize=None)
def _enumerate_modes_cached(
    num_servers: int, num_operative_phases: int, num_inoperative_phases: int
) -> tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]:
    modes: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    for operative_count in range(num_servers + 1):
        inoperative_count = num_servers - operative_count
        operative_splits = compositions(operative_count, num_operative_phases)
        inoperative_splits = compositions(inoperative_count, num_inoperative_phases)
        for operative, inoperative in itertools.product(operative_splits, inoperative_splits):
            modes.append((operative, inoperative))
    return tuple(modes)


def enumerate_modes(
    num_servers: int, num_operative_phases: int, num_inoperative_phases: int
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Enumerate all operational modes as ``(X, Y)`` occupancy pairs.

    ``X`` is the tuple of per-phase counts of operative servers and ``Y`` the
    tuple of per-phase counts of inoperative servers; ``sum(X) + sum(Y) = N``.
    Modes are ordered by increasing number of operative servers, matching the
    paper's worked example (mode 0 has every server inoperative).

    The result is cached internally; callers receive a fresh list they may
    mutate freely.
    """
    total_servers = check_non_negative_int(num_servers, "num_servers")
    n = check_positive_int(num_operative_phases, "num_operative_phases")
    m = check_positive_int(num_inoperative_phases, "num_inoperative_phases")
    return list(_enumerate_modes_cached(total_servers, n, m))


def mode_index_map(
    num_servers: int, num_operative_phases: int, num_inoperative_phases: int
) -> dict[tuple[tuple[int, ...], tuple[int, ...]], int]:
    """Map each ``(X, Y)`` occupancy pair to its mode index."""
    modes = enumerate_modes(num_servers, num_operative_phases, num_inoperative_phases)
    return {mode: index for index, mode in enumerate(modes)}


def operative_counts(
    num_servers: int, num_operative_phases: int, num_inoperative_phases: int
) -> list[int]:
    """The number of operative servers ``x = sum(X)`` for every mode, in mode order."""
    modes = enumerate_modes(num_servers, num_operative_phases, num_inoperative_phases)
    return [sum(operative) for operative, _ in modes]
