"""Per-server (product-space) scenario environment, for lumping verification.

:class:`~repro.markov.scenario_env.ScenarioEnvironment` tracks only *how
many* servers of each group occupy each phase — the lumped representation.
This module builds the chain it is the quotient of: every server is labelled
and tracked individually, so a global state is the tuple of per-server phases
and the state space has :math:`\\prod_g (n_g + m_g)^{N_g}` states instead of
:math:`\\prod_g \\binom{N_g + n_g + m_g - 1}{n_g + m_g - 1}`.

Servers within a group are exchangeable: breakdown and repair rates depend
only on a server's own phase and on the *total* number of broken servers
(through the crew-sharing factor), never on server identity.  The count map
is therefore a strong lumping of this chain, and the two representations are
law-equivalent — :meth:`ProductScenarioEnvironment.lumping_map` exhibits the
quotient map, and the equivalence tests aggregate product-space solutions
through it and compare against the lumped solver at solver precision.

The product space grows exponentially in the group sizes, so this class
guards construction behind :data:`PRODUCT_STATE_LIMIT`; it exists for
verification and debugging (``--representation product``), not for scale.
That asymmetry is the point: the lumped representation is what makes
many-server scenarios tractable at all.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse

from .._validation import check_positive_int
from ..distributions import Distribution
from ..exceptions import ParameterError
from .environment import _as_phase_mixture
from .scenario_env import ScenarioEnvironment

#: Hard cap on the number of product states a :class:`ProductScenarioEnvironment`
#: will materialise.  Beyond it the lumped representation is the only option.
PRODUCT_STATE_LIMIT = 60_000

#: The named initial conditions understood by :meth:`ProductScenarioEnvironment.initial_distribution`.
_INITIAL_KINDS = ("empty-operative", "empty-inoperative", "empty-equilibrium")


@dataclass(frozen=True)
class _GroupSpace:
    """Per-group bookkeeping of the product construction (internal)."""

    size: int  # number of servers N_g
    alpha: np.ndarray
    xi: np.ndarray
    beta: np.ndarray
    eta: np.ndarray

    @property
    def num_phases(self) -> int:
        """Local per-server states: operative phases first, then inoperative."""
        return int(self.alpha.size + self.beta.size)

    @property
    def subspace_size(self) -> int:
        """Size of the group's product subspace ``(n + m)^N``."""
        return self.num_phases**self.size


class ProductScenarioEnvironment:
    """The per-server-labelled environment chain of a scenario.

    Accepts the same ``(size, operative, inoperative)`` group triples and
    ``repair_capacity`` as :class:`ScenarioEnvironment` and exposes the same
    solving surface (``num_modes``, ``transition_matrix_sparse``,
    ``generator_sparse``, ``steady_state``, ``operative_counts_by_group``),
    so the truncated-chain builders treat either representation uniformly.
    """

    def __init__(
        self,
        groups: list[tuple[int, Distribution, Distribution]],
        *,
        repair_capacity: int | None = None,
    ) -> None:
        if not groups:
            raise ParameterError("a scenario environment needs at least one server group")
        spaces: list[_GroupSpace] = []
        for position, (size, operative, inoperative) in enumerate(groups):
            size = check_positive_int(size, f"groups[{position}].size")
            alpha, xi = _as_phase_mixture(operative, f"groups[{position}].operative")
            beta, eta = _as_phase_mixture(inoperative, f"groups[{position}].inoperative")
            spaces.append(_GroupSpace(size=size, alpha=alpha, xi=xi, beta=beta, eta=eta))
        self._spaces = tuple(spaces)
        self._num_servers = sum(space.size for space in self._spaces)
        if repair_capacity is None:
            repair_capacity = self._num_servers
        repair_capacity = check_positive_int(repair_capacity, "repair_capacity")
        self._repair_capacity = min(repair_capacity, self._num_servers)
        self._groups_spec = list(groups)

        total = math.prod(space.subspace_size for space in self._spaces)
        if total > PRODUCT_STATE_LIMIT:
            raise ParameterError(
                f"the product representation has {total} states "
                f"(limit {PRODUCT_STATE_LIMIT}); use the lumped representation "
                "for scenarios of this size"
            )
        self._num_states = total

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #

    @property
    def num_servers(self) -> int:
        """The total number of servers ``N``."""
        return self._num_servers

    @property
    def repair_capacity(self) -> int:
        """The repair-crew size ``R`` (at most ``N``)."""
        return self._repair_capacity

    @property
    def num_states(self) -> int:
        """The number of per-server-labelled global states."""
        return self._num_states

    @property
    def num_modes(self) -> int:
        """Alias of :attr:`num_states` (the builders' uniform vocabulary)."""
        return self._num_states

    @cached_property
    def lumped(self) -> ScenarioEnvironment:
        """The count-based quotient environment this chain lumps onto."""
        return ScenarioEnvironment(self._groups_spec, repair_capacity=self._repair_capacity)

    # ------------------------------------------------------------------ #
    # Per-group subspace tables (each of size (n_g + m_g)^{N_g})
    # ------------------------------------------------------------------ #

    def _group_digit_table(self, position: int) -> np.ndarray:
        """Array ``(subspace, N_g)``: the per-server phase digits of each combo."""
        space = self._spaces[position]
        base, servers = space.num_phases, space.size
        combos = np.arange(space.subspace_size)
        digits = np.empty((space.subspace_size, servers), dtype=np.int64)
        for server in range(servers):
            combos, digit = np.divmod(combos, base)
            digits[:, server] = digit
        return digits

    @cached_property
    def operative_counts_by_group(self) -> np.ndarray:
        """Array ``(num_states, K)``: operative servers per group and state."""
        counts = np.zeros((self._num_states, len(self._spaces)))
        sizes = [space.subspace_size for space in self._spaces]
        for position, space in enumerate(self._spaces):
            digits = self._group_digit_table(position)
            local = (digits < space.alpha.size).sum(axis=1).astype(float)
            before = math.prod(sizes[:position])
            after = math.prod(sizes[position + 1 :])
            counts[:, position] = np.tile(np.repeat(local, after), before)
        return counts

    @cached_property
    def operative_counts(self) -> np.ndarray:
        """The total number of operative servers in each state."""
        return self.operative_counts_by_group.sum(axis=1)

    @cached_property
    def broken_counts(self) -> np.ndarray:
        """The total number of inoperative servers in each state."""
        return float(self._num_servers) - self.operative_counts

    def service_capacities(self, service_rates: Sequence[float] | np.ndarray) -> np.ndarray:
        """Per-state full-utilisation service capacity ``sum_g x_g mu_g``."""
        rates = np.asarray(service_rates, dtype=float)
        if rates.shape != (len(self._spaces),):
            raise ParameterError(
                f"expected {len(self._spaces)} per-group service rates, got shape {rates.shape}"
            )
        return self.operative_counts_by_group @ rates

    @cached_property
    def lumping_map(self) -> np.ndarray:
        """Array of length ``num_states``: the lumped mode index of each state.

        The quotient map of the strong lumping: state ``i`` maps to the mode
        whose per-group phase-occupancy counts match the state's.
        """
        lumped = self.lumped
        sizes = [space.subspace_size for space in self._spaces]
        lumped_sizes = [len(modes) for modes in lumped._local_modes]
        global_index = np.zeros(self._num_states, dtype=np.int64)
        for position, space in enumerate(self._spaces):
            digits = self._group_digit_table(position)
            index_map = lumped._local_index[position]
            n, m = space.alpha.size, space.beta.size
            local = np.empty(space.subspace_size, dtype=np.int64)
            for combo in range(space.subspace_size):
                occupancy = np.bincount(digits[combo], minlength=n + m)
                key = (tuple(int(c) for c in occupancy[:n]), tuple(int(c) for c in occupancy[n:]))
                local[combo] = index_map[key]
            before = math.prod(sizes[:position])
            after = math.prod(sizes[position + 1 :])
            tiled = np.tile(np.repeat(local, after), before)
            stride = math.prod(lumped_sizes[position + 1 :])
            global_index += tiled * stride
        return global_index

    def lump_distribution(self, distribution: np.ndarray) -> np.ndarray:
        """Aggregate a distribution over product states onto the lumped modes."""
        vector = np.asarray(distribution, dtype=float)
        if vector.shape[-1] != self._num_states:
            raise ParameterError(
                f"distribution has {vector.shape[-1]} entries, expected {self._num_states}"
            )
        flat = vector.reshape(-1, self._num_states)
        lumped = np.zeros((flat.shape[0], self.lumped.num_modes))
        for row in range(flat.shape[0]):
            np.add.at(lumped[row], self.lumping_map, flat[row])
        return lumped.reshape(vector.shape[:-1] + (self.lumped.num_modes,))

    # ------------------------------------------------------------------ #
    # Transition structure
    # ------------------------------------------------------------------ #

    def _local_server_matrices(
        self, position: int
    ) -> tuple[scipy.sparse.csr_matrix, scipy.sparse.csr_matrix]:
        """One *server's* local breakdown and unscaled repair matrices."""
        space = self._spaces[position]
        n, m = space.alpha.size, space.beta.size
        breakdown = np.zeros((n + m, n + m))
        repair = np.zeros((n + m, n + m))
        for j in range(n):
            for k in range(m):
                breakdown[j, n + k] = space.xi[j] * space.beta[k]
        for k in range(m):
            for j in range(n):
                repair[n + k, j] = space.eta[k] * space.alpha[j]
        return scipy.sparse.csr_matrix(breakdown), scipy.sparse.csr_matrix(repair)

    @cached_property
    def transition_matrix_sparse(self) -> scipy.sparse.csr_matrix:
        """Sparse state-changing transition rates (zero diagonal).

        One Kronecker lift per *server*: server transitions are independent
        apart from the crew-sharing factor, which depends only on the global
        broken count and is applied as a row scaling of the repair part.
        """
        bases = [
            space.num_phases for space in self._spaces for _ in range(space.size)
        ]
        server_positions = [
            position for position, space in enumerate(self._spaces) for _ in range(space.size)
        ]
        total = self._num_states
        breakdown = scipy.sparse.csr_matrix((total, total))
        repair = scipy.sparse.csr_matrix((total, total))
        for server, position in enumerate(server_positions):
            local_breakdown, local_repair = self._local_server_matrices(position)
            before = math.prod(bases[:server])
            after = math.prod(bases[server + 1 :])
            for local, is_breakdown in ((local_breakdown, True), (local_repair, False)):
                lifted = scipy.sparse.kron(
                    scipy.sparse.identity(before),
                    scipy.sparse.kron(local, scipy.sparse.identity(after)),
                ).tocsr()
                if is_breakdown:
                    breakdown = breakdown + lifted
                else:
                    repair = repair + lifted
        broken = self.broken_counts
        share = np.where(
            broken > 0.0,
            np.minimum(broken, float(self._repair_capacity)) / np.maximum(broken, 1.0),
            1.0,
        )
        return (breakdown + scipy.sparse.diags(share) @ repair).tocsr()

    @cached_property
    def generator_sparse(self) -> scipy.sparse.csr_matrix:
        """The environment's CTMC generator over the product states."""
        matrix = self.transition_matrix_sparse
        diagonal = np.asarray(matrix.sum(axis=1)).ravel()
        return (matrix - scipy.sparse.diags(diagonal)).tocsr()

    @cached_property
    def steady_state(self) -> np.ndarray:
        """The stationary distribution over the product states."""
        from .kernels import steady_state_csr

        return steady_state_csr(self.generator_sparse)

    # ------------------------------------------------------------------ #
    # Initial conditions (transient analysis)
    # ------------------------------------------------------------------ #

    def initial_distribution(self, kind: str) -> np.ndarray:
        """A named initial distribution over the product states.

        ``"empty-operative"`` / ``"empty-inoperative"`` start every server
        independently in an operative / inoperative phase drawn from the
        group's entry weights (the product-space counterpart of the lumped
        multinomial start); ``"empty-equilibrium"`` is :attr:`steady_state`.
        """
        if kind not in _INITIAL_KINDS:
            raise ParameterError(
                f"unknown initial condition {kind!r}; expected one of {', '.join(_INITIAL_KINDS)}"
            )
        if kind == "empty-equilibrium":
            return np.asarray(self.steady_state, dtype=float)
        operative_start = kind == "empty-operative"
        vector = np.array([1.0])
        for space in self._spaces:
            weights = np.zeros(space.num_phases)
            if operative_start:
                weights[: space.alpha.size] = space.alpha
            else:
                weights[space.alpha.size :] = space.beta
            for _ in range(space.size):
                vector = np.multiply.outer(vector, weights).ravel()
        return vector

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = tuple(space.size for space in self._spaces)
        return (
            f"ProductScenarioEnvironment(groups={sizes}, "
            f"R={self._repair_capacity}, states={self._num_states})"
        )
